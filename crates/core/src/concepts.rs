//! Base concepts and concept-set curation (paper §3.2, Table 1).
//!
//! A base concept pairs a short operator-facing *name* ("Rapidly
//! Depleting Buffer") with a richer *text* used for embedding. The text
//! plays the role of the LLM-derived concept description: it spells the
//! concept out in the same pattern vocabulary the input describer emits,
//! which is what makes cosine similarity between descriptions and
//! concepts meaningful.
//!
//! The predefined sets below are the concrete concepts of paper Table 1
//! (16 for ABR, 8 for congestion control, 10 for DDoS detection). The
//! paper derives these with an LLM over survey papers and then lets the
//! operator filter near-duplicates via the inter-concept similarity
//! matrix; [`ConceptSet::filter_redundant`] implements that empirical
//! check (Eq. 1).

use agua_text::embedding::{cosine_similarity, Embedder};
use serde::{Deserialize, Serialize};

/// One base concept.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Concept {
    /// Operator-facing name (Table 1 entry).
    pub name: String,
    /// Rich description embedded for similarity scoring.
    pub text: String,
}

impl Concept {
    /// Creates a concept.
    pub fn new(name: &str, text: &str) -> Self {
        Self { name: name.to_string(), text: text.to_string() }
    }

    /// The string actually embedded: name plus description.
    pub fn embedding_text(&self) -> String {
        format!("{}. {}", self.name, self.text)
    }
}

/// An ordered set of base concepts.
///
/// ```
/// use agua::concepts::cc_concepts;
/// use agua_text::embedding::Embedder;
///
/// let set = cc_concepts(); // the paper's Table 1b
/// assert_eq!(set.len(), 8);
/// let (kept, removed) = set.filter_redundant(&Embedder::new(256), 0.95);
/// assert!(removed.is_empty()); // the curated set has no near-duplicates
/// assert_eq!(kept.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptSet {
    /// The concepts, in explanation order.
    pub concepts: Vec<Concept>,
}

impl ConceptSet {
    /// Wraps a list of concepts.
    pub fn new(concepts: Vec<Concept>) -> Self {
        assert!(!concepts.is_empty(), "a concept set cannot be empty");
        Self { concepts }
    }

    /// Number of concepts (`C` in the paper).
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }

    /// Concept names in order.
    pub fn names(&self) -> Vec<String> {
        self.concepts.iter().map(|c| c.name.clone()).collect()
    }

    /// Embeds every concept with `embedder`.
    pub fn embed(&self, embedder: &Embedder) -> Vec<Vec<f32>> {
        self.concepts.iter().map(|c| embedder.embed(&c.embedding_text())).collect()
    }

    /// The `C × C` inter-concept cosine similarity matrix (Eq. 1).
    pub fn similarity_matrix(&self, embedder: &Embedder) -> Vec<Vec<f32>> {
        let embs = self.embed(embedder);
        embs.iter().map(|a| embs.iter().map(|b| cosine_similarity(a, b)).collect()).collect()
    }

    /// The operator's empirical redundancy check: walks the similarity
    /// matrix in order and removes any concept whose similarity to an
    /// already-retained concept exceeds `s_max`. Returns the filtered set
    /// and the names of removed concepts.
    pub fn filter_redundant(&self, embedder: &Embedder, s_max: f32) -> (ConceptSet, Vec<String>) {
        let sim = self.similarity_matrix(embedder);
        let mut kept: Vec<usize> = Vec::new();
        let mut removed = Vec::new();
        for i in 0..self.len() {
            if kept.iter().any(|&j| sim[i][j] > s_max) {
                removed.push(self.concepts[i].name.clone());
            } else {
                kept.push(i);
            }
        }
        let set = ConceptSet::new(kept.iter().map(|&i| self.concepts[i].clone()).collect());
        (set, removed)
    }

    /// A subset containing the first `n` concepts (for the Fig. 13
    /// concept-space-size ablation).
    pub fn take(&self, n: usize) -> ConceptSet {
        assert!(n >= 1 && n <= self.len(), "subset size out of range");
        ConceptSet::new(self.concepts[..n].to_vec())
    }
}

/// The 16 ABR base concepts (paper Table 1a).
pub fn abr_concepts() -> ConceptSet {
    ConceptSet::new(vec![
        Concept::new(
            "Volatile Network Throughput",
            "network throughput volatile and fluctuating, erratic unstable network throughput, \
             transmission time volatile",
        ),
        Concept::new(
            "Rapidly Depleting Buffer",
            "client buffer rapidly decreasing, client buffer falling dropping toward empty, \
             very low client buffer",
        ),
        Concept::new(
            "Low Content Complexity",
            "very low upcoming video size complexity, low upcoming video size complexity, \
             simple content with low upcoming video sizes",
        ),
        Concept::new(
            "Recent Network Improvement",
            "network throughput increasing and recovering, transmission time decreasing, \
             improving network throughput",
        ),
        Concept::new(
            "Extreme Network Degradation",
            "network throughput rapidly decreasing, very low network throughput, transmission \
             time rapidly increasing, very high transmission time, stalling increasing",
        ),
        Concept::new(
            "Moderate Network Throughput",
            "moderate network throughput, stable moderate network throughput, moderate \
             transmission time",
        ),
        Concept::new(
            "Anticipation of Network Congestion",
            "network throughput decreasing, transmission time increasing, upcoming video size \
             complexity increasing, congestion ahead",
        ),
        Concept::new(
            "Content requiring High Quality",
            "very high upcoming video quality, high upcoming video quality, content requiring \
             high quality",
        ),
        Concept::new(
            "Stable Buffer",
            "client buffer stable and steady, consistent client buffer, moderate client buffer",
        ),
        Concept::new(
            "Nearly Full Buffer",
            "very high client buffer, client buffer high and full, client buffer near full \
             capacity",
        ),
        Concept::new(
            "Startup of video",
            "very low client buffer at startup, very low selected video quality, very low \
             quality of experience, playback startup",
        ),
        Concept::new(
            "High Content Complexity",
            "very high upcoming video size complexity, increasing upcoming video size \
             complexity, complex content with high upcoming video sizes",
        ),
        Concept::new(
            "Network volatility needing switches",
            "volatile network throughput with volatile selected video quality, fluctuating \
             quality switches, erratic selected chunk size",
        ),
        Concept::new(
            "Avoiding Large Quality Fluctuations",
            "stable selected video quality, steady selected video quality, smooth quality \
             without fluctuations",
        ),
        Concept::new(
            "Switch to higher quality after startup",
            "increasing selected video quality, increasing quality of experience, client \
             buffer increasing after startup",
        ),
        Concept::new(
            "High Network Throughput",
            "very high network throughput, high stable network throughput, very low \
             transmission time",
        ),
    ])
}

/// The 8 congestion-control base concepts (paper Table 1b).
pub fn cc_concepts() -> ConceptSet {
    ConceptSet::new(vec![
        Concept::new(
            "Increasing Packet Loss",
            "packet loss rate increasing, rising packet loss, high packet loss rate",
        ),
        Concept::new(
            "Decreasing Packet Loss",
            "packet loss rate decreasing, falling packet loss, packet loss recovering",
        ),
        Concept::new(
            "Stable Network Conditions",
            "stable network latency, steady network latency, stable delivered network \
             utilization throughput, very low packet loss rate",
        ),
        Concept::new(
            "Rapidly Increasing Latency",
            "network latency rapidly increasing, rapidly rising network latency, high \
             network latency",
        ),
        Concept::new(
            "Rapidly Decreasing Latency",
            "network latency rapidly decreasing, rapidly falling network latency, \
             network latency recovering",
        ),
        Concept::new(
            "Volatile Network Conditions",
            "volatile network latency, fluctuating delivered network utilization throughput, \
             erratic unstable network conditions, volatile sending rate",
        ),
        Concept::new(
            "Low Network Utilization",
            "very low delivered network utilization throughput, low sending rate, low \
             network utilization",
        ),
        Concept::new(
            "High Network Utilization",
            "very high delivered network utilization throughput, high sending rate, high \
             network utilization",
        ),
    ])
}

/// The 10 DDoS-detection base concepts (paper Table 1c).
pub fn ddos_concepts() -> ConceptSet {
    ConceptSet::new(vec![
        Concept::new(
            "Geographical and Temporal Consistency",
            "very high source geographic temporal consistency, stable source geographic \
             temporal consistency",
        ),
        Concept::new(
            "Typical Application Behavior",
            "moderate request packet rate, moderate payload packet size, moderate payload \
             entropy, high ack protocol compliance, typical application behavior",
        ),
        Concept::new(
            "Low-and-Slow Attack Indicators",
            "very low request packet rate, sparse slow requests, low payload packet size, \
             slow attack",
        ),
        Concept::new(
            "High Request Rates",
            "very high request packet rate, high request packet rate, surging request rate",
        ),
        Concept::new(
            "Geographic Irregularities",
            "very low source geographic temporal consistency, volatile source geographic \
             temporal consistency",
        ),
        Concept::new(
            "Protocol Anomalies",
            "very high syn handshake intensity, very low ack protocol compliance, anomalous \
             protocol handshake",
        ),
        Concept::new(
            "Repeated Access Requests",
            "stable request packet rate, stable repeated payload packet size, repeated \
             access requests",
        ),
        Concept::new(
            "Behavioral Anomalies",
            "volatile request packet rate, volatile payload packet size, erratic anomalous \
             behavior",
        ),
        Concept::new(
            "Payload Anomalies",
            "very low payload entropy, very high payload entropy, very low payload packet \
             size, anomalous payload",
        ),
        Concept::new(
            "Protocol Compliance",
            "very high ack protocol compliance, high ack protocol compliance, compliant \
             protocol handshake",
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_sets_match_table_one_sizes() {
        assert_eq!(abr_concepts().len(), 16);
        assert_eq!(cc_concepts().len(), 8);
        assert_eq!(ddos_concepts().len(), 10);
    }

    #[test]
    fn names_are_unique_within_each_set() {
        for set in [abr_concepts(), cc_concepts(), ddos_concepts()] {
            let mut names = set.names();
            names.sort();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate concept names");
        }
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let set = cc_concepts();
        let e = Embedder::new(512);
        let m = set.similarity_matrix(&e);
        for i in 0..set.len() {
            assert!((m[i][i] - 1.0).abs() < 1e-4, "diagonal {i}: {}", m[i][i]);
            for j in 0..set.len() {
                assert!((m[i][j] - m[j][i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn opposed_concepts_are_not_near_duplicates() {
        let set = cc_concepts();
        let m = set.similarity_matrix(&Embedder::new(512));
        // "Low Network Utilization" (6) vs "High Network Utilization" (7)
        // share nouns but must stay below a near-duplicate threshold.
        assert!(m[6][7] < 0.9, "opposites too similar: {}", m[6][7]);
    }

    #[test]
    fn filter_removes_a_planted_duplicate() {
        let mut set = abr_concepts();
        set.concepts.push(Concept::new(
            "Volatile Network Throughput (dup)",
            "network throughput volatile and fluctuating, erratic unstable network \
             throughput, transmission time volatile",
        ));
        let e = Embedder::new(512);
        let (filtered, removed) = ConceptSet::new(set.concepts).filter_redundant(&e, 0.85);
        assert_eq!(removed.len(), 1, "exactly the planted duplicate: {removed:?}");
        assert!(removed[0].contains("dup"));
        assert_eq!(filtered.len(), 16);
    }

    #[test]
    fn filter_keeps_everything_at_high_threshold() {
        let set = ddos_concepts();
        let e = Embedder::new(512);
        let (filtered, removed) = set.filter_redundant(&e, 0.999);
        assert!(removed.is_empty());
        assert_eq!(filtered.len(), set.len());
    }

    #[test]
    fn take_returns_prefix() {
        let set = abr_concepts();
        let sub = set.take(4);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.concepts[0].name, set.concepts[0].name);
    }

    #[test]
    #[should_panic(expected = "subset size out of range")]
    fn take_rejects_zero() {
        let _ = abr_concepts().take(0);
    }
}
