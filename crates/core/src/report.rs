//! Global model reports — Agua's analogue of Trustee's trust report.
//!
//! Where explanations (Fig. 4) answer "why *this* decision?", the report
//! summarizes the whole surrogate: held-out fidelity, the sparsity that
//! ElasticNet bought, and for every output class the globally strongest
//! (concept, similarity-class) drivers read directly off Ω's
//! self-interpretable weight matrix.

use crate::surrogate::AguaModel;
use agua_nn::Matrix;
use serde::{Deserialize, Serialize};

/// One output class's global summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassSummary {
    /// The output class index.
    pub class: usize,
    /// Fraction of evaluation decisions the controller gave this class.
    pub support: f32,
    /// Strongest positive Ω weights for this class, as
    /// `(concept, similarity-class name, weight)`.
    pub top_drivers: Vec<(String, String, f32)>,
}

/// A whole-model report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AguaReport {
    /// Fidelity on the provided evaluation data (Eq. 11).
    pub fidelity: f32,
    /// Number of evaluation decisions.
    pub samples: usize,
    /// Fraction of Ω weights with magnitude below 0.01 — the sparsity the
    /// ElasticNet regularization (Eq. 6) buys for readability.
    pub omega_sparsity: f32,
    /// Per-output-class summaries, ordered by class index.
    pub classes: Vec<ClassSummary>,
}

impl AguaReport {
    /// Builds a report from a fitted model and evaluation data.
    pub fn build(
        model: &AguaModel,
        embeddings: &Matrix,
        controller_outputs: &[usize],
        top_n: usize,
    ) -> Self {
        assert_eq!(embeddings.rows(), controller_outputs.len());
        let fidelity = model.fidelity(embeddings, controller_outputs);
        let n = controller_outputs.len();

        let w = model.output_mapping.weights();
        let total = (w.rows() * w.cols()) as f32;
        let omega_sparsity = w.as_slice().iter().filter(|v| v.abs() < 0.01).count() as f32 / total;

        let k = model.k();
        let class_names = ["low", "medium", "high"];
        let classes = (0..model.n_outputs())
            .map(|class| {
                let support = controller_outputs.iter().filter(|&&y| y == class).count() as f32
                    / n.max(1) as f32;
                let mut entries: Vec<(String, String, f32)> = (0..w.rows())
                    .map(|d| {
                        let concept = model.concept_names[d / k].clone();
                        let level = if k == 3 {
                            class_names[d % k].to_string()
                        } else {
                            format!("class {}", d % k)
                        };
                        (concept, level, w.get(d, class))
                    })
                    .collect();
                entries.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite weights"));
                entries.truncate(top_n);
                ClassSummary { class, support, top_drivers: entries }
            })
            .collect();

        Self { fidelity, samples: n, omega_sparsity, classes }
    }

    /// Renders the report as readable text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Agua model report — fidelity {:.3} over {} decisions, Ω sparsity {:.0}%\n",
            self.fidelity,
            self.samples,
            self.omega_sparsity * 100.0
        );
        for c in &self.classes {
            out.push_str(&format!("  class {} (support {:.1}%):\n", c.class, c.support * 100.0));
            for (concept, level, weight) in &c.top_drivers {
                out.push_str(&format!("    {concept:<44} [{level:<6}] {weight:+.3}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{Concept, ConceptSet};
    use crate::surrogate::{SurrogateDataset, TrainParams};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn fitted() -> (AguaModel, Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut outputs = Vec::new();
        for _ in 0..400 {
            let a: f32 = rng.random_range(0.0..1.0);
            rows.push(vec![a, 1.0 - a, rng.random_range(-0.05..0.05)]);
            let q = |v: f32| {
                if v <= 0.33 {
                    0
                } else if v <= 0.66 {
                    1
                } else {
                    2
                }
            };
            labels.push(vec![q(a), q(1.0 - a)]);
            outputs.push(usize::from(a > 0.5));
        }
        let concepts =
            ConceptSet::new(vec![Concept::new("Alpha", "alpha"), Concept::new("Beta", "beta")]);
        let embeddings = Matrix::from_rows(&rows);
        let ds = SurrogateDataset {
            embeddings: embeddings.clone(),
            concept_labels: labels,
            outputs: outputs.clone(),
        };
        let model = AguaModel::fit(&concepts, 3, 2, &ds, &TrainParams::fast());
        (model, embeddings, outputs)
    }

    #[test]
    fn report_summarizes_every_class() {
        let (model, embeddings, outputs) = fitted();
        let report = AguaReport::build(&model, &embeddings, &outputs, 3);
        assert_eq!(report.classes.len(), 2);
        assert_eq!(report.samples, 400);
        assert!(report.fidelity > 0.8);
        let support_sum: f32 = report.classes.iter().map(|c| c.support).sum();
        assert!((support_sum - 1.0).abs() < 1e-5);
        for c in &report.classes {
            assert_eq!(c.top_drivers.len(), 3);
        }
    }

    #[test]
    fn top_drivers_are_sorted_descending() {
        let (model, embeddings, outputs) = fitted();
        let report = AguaReport::build(&model, &embeddings, &outputs, 5);
        for c in &report.classes {
            for pair in c.top_drivers.windows(2) {
                assert!(pair[0].2 >= pair[1].2);
            }
        }
    }

    #[test]
    fn class_one_is_driven_by_high_alpha() {
        let (model, embeddings, outputs) = fitted();
        let report = AguaReport::build(&model, &embeddings, &outputs, 2);
        let drivers = &report.classes[1].top_drivers;
        assert!(
            drivers
                .iter()
                .any(|(c, level, _)| c == "Alpha" && level == "high"
                    || c == "Beta" && level == "low"),
            "class 1 drivers: {drivers:?}"
        );
    }

    #[test]
    fn render_mentions_fidelity_and_classes() {
        let (model, embeddings, outputs) = fitted();
        let text = AguaReport::build(&model, &embeddings, &outputs, 2).render();
        assert!(text.contains("fidelity"));
        assert!(text.contains("class 0"));
        assert!(text.contains("class 1"));
    }
}
