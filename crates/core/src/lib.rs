//! # agua — a concept-based explainer for learning-enabled systems
//!
//! Rust implementation of **Agua** (SIGCOMM '25): a surrogate explainer
//! that expresses an opaque controller's decisions as a linear
//! combination of *high-level, human-understandable concepts* ("volatile
//! network conditions", "rapidly depleting buffer") instead of raw input
//! features.
//!
//! ## Architecture (paper §3)
//!
//! Agua builds a two-stage surrogate of the controller `f`:
//!
//! ```text
//!          controller embedding        concept space           output space
//! x ──h()──►  h(x) ∈ R^H  ──δ()──►  s ∈ R^(C·k)  ──Ω()──►  y ∈ R^n
//!                           concept mapping        output mapping (linear)
//! ```
//!
//! * [`concepts`] — base concepts (paper Table 1), inter-concept
//!   similarity filtering (§3.2);
//! * [`labeling`] — the LLM + embedding labelling pipeline (§3.3):
//!   descriptions → embeddings → cosine similarity → quantized classes;
//! * [`surrogate`] — the concept mapping function δ (2-layer MLP with
//!   LayerNorm, Eq. 3–4), the linear output mapping Ω with ElasticNet
//!   (Eq. 5–6), and the fidelity metric (Eq. 11);
//! * [`explain`] — factual, counterfactual, single-input, and batched
//!   explanations (§3.5–3.6, Eq. 7–10);
//! * [`lifecycle`] — the four deployment use cases (§5.2): concept-level
//!   distribution-shift detection, concept-driven retraining selection,
//!   debugging support, and concept-guided dataset expansion;
//! * [`robustness`] — the §5.3 recall-based robustness metrics.
//!
//! The crate is controller-agnostic: it consumes embedding matrices and
//! output labels, never the controllers themselves, so any model exposing
//! fixed-dimensional embeddings can be explained.

#![forbid(unsafe_code)]

pub mod concepts;
pub mod congen;
pub mod explain;
pub mod labeling;
pub mod lifecycle;
pub mod quantized;
pub mod report;
pub mod robustness;
pub mod surrogate;

pub use concepts::{Concept, ConceptSet};
pub use explain::{BatchedExplanation, Explanation, RowQuery};
pub use labeling::{ConceptLabeler, Quantizer};
pub use quantized::{QuantFidelityReport, QuantizedAguaModel};
pub use report::AguaReport;
pub use surrogate::{AguaModel, SurrogateDataset, TrainParams};
