//! Explanation generation (paper §3.5–3.6, Eq. 7–10).
//!
//! For an output class `i`, the per-(concept, class) contribution vector
//! is the Hadamard product `W⟨i⟩ ∘ δ(h(x))` plus the spread bias term
//! (Eq. 8). Contributions are softmax-normalized over the `C·k` entries
//! and scaled by the surrogate's probability of the queried class
//! (Eq. 9–10), so the per-concept weights are positive, sum to that
//! probability, and rank the drivers of the decision.
//!
//! No LLM is involved here: explanations come solely from the trained
//! surrogate.

use crate::quantized::QuantizedAguaModel;
use crate::surrogate::AguaModel;
use agua_nn::Matrix;
use agua_obs::{emit, ExplanationKind, ExplanationProduced, Noop, Subscriber};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One concept's contribution to an explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptContribution {
    /// Concept name.
    pub concept: String,
    /// Total weight of the concept (sum over its `k` similarity classes).
    pub weight: f32,
    /// Per-similarity-class breakdown (`k` entries, low→high). A large
    /// low-class entry means the *absence* of the concept drives the
    /// output (as in the paper's Fig. 4b, where absent "High Network
    /// Throughput" pushes toward the medium bitrate).
    pub per_class: Vec<f32>,
}

/// A concept-level explanation of one output class for one input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// The output class being explained.
    pub output_class: usize,
    /// The surrogate's probability of that class.
    pub output_prob: f32,
    /// Whether this is the surrogate's chosen class (factual) or a
    /// counterfactual query.
    pub factual: bool,
    /// Contributions sorted by descending weight.
    pub contributions: Vec<ConceptContribution>,
}

impl Explanation {
    /// The names of the top `n` concepts by weight.
    pub fn top_concepts(&self, n: usize) -> Vec<String> {
        self.contributions.iter().take(n).map(|c| c.concept.clone()).collect()
    }

    /// Renders the explanation as an ASCII bar chart (the paper's Fig. 4
    /// in terminal form).
    pub fn render(&self, bars: usize) -> String {
        let mut out = format!(
            "{} explanation for output class {} (p = {:.3})\n",
            if self.factual { "Factual" } else { "Counterfactual" },
            self.output_class,
            self.output_prob
        );
        let max = self.contributions.first().map_or(1.0, |c| c.weight.max(1e-9));
        for c in self.contributions.iter().take(bars) {
            let width = ((c.weight / max) * 40.0).round() as usize;
            out.push_str(&format!(
                "  {:<44} {:>7.4} {}\n",
                c.concept,
                c.weight,
                "#".repeat(width.max(1))
            ));
        }
        out
    }
}

/// A batch-averaged explanation (paper §3.6 "Batched Input
/// Explanations"): concept contributions averaged over many inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchedExplanation {
    /// The output class being explained.
    pub output_class: usize,
    /// Mean surrogate probability of the class over the batch.
    pub mean_output_prob: f32,
    /// Number of inputs averaged.
    pub batch_size: usize,
    /// Mean contributions sorted by descending weight.
    pub contributions: Vec<ConceptContribution>,
}

impl BatchedExplanation {
    /// The names of the top `n` concepts by mean weight.
    pub fn top_concepts(&self, n: usize) -> Vec<String> {
        self.contributions.iter().take(n).map(|c| c.concept.clone()).collect()
    }
}

/// Computes the Eq. 8–10 contribution vector for row `r` of
/// `concept_probs` and output class `i`.
fn contributions_for(
    model: &AguaModel,
    concept_probs: &Matrix,
    row: usize,
    class: usize,
    class_prob: f32,
) -> Vec<ConceptContribution> {
    let c = model.concepts();
    let k = model.k();
    let w = model.output_mapping.weights(); // (C·k) × n
    let bias = model.output_mapping.bias().get(0, class);
    let spread_bias = bias / (c * k) as f32;

    // z = W⟨i⟩ ∘ s + b_i/(C·k)   (Eq. 8, before the L1 norm)
    //= spec: specs/core-equations.toml#explanation-attribution
    //# z = W<i> o s + b_i/(C*k): the Hadamard product of output class
    //# i's Omega weight row with the concept-class probabilities s,
    //# plus the class bias spread uniformly over all C*k entries
    let z: Vec<f32> =
        (0..c * k).map(|d| w.get(d, class) * concept_probs.get(row, d) + spread_bias).collect();

    // σ(z) over all C·k entries, scaled by the class probability (Eq. 9–10).
    let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();

    let mut contributions: Vec<ConceptContribution> = (0..c)
        .map(|g| {
            let per_class: Vec<f32> = (0..k).map(|j| class_prob * exps[g * k + j] / sum).collect();
            ConceptContribution {
                concept: model.concept_names[g].clone(),
                weight: per_class.iter().sum(),
                per_class,
            }
        })
        .collect();
    //= spec: specs/core-equations.toml#topk-ranking
    //# rank concepts by total contribution in descending order
    contributions.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
    contributions
}

/// Factual explanation (Eq. 9): why the surrogate's chosen class was
/// chosen for the single input whose embedding is `embedding` (1 × H).
pub fn factual(model: &AguaModel, embedding: &Matrix) -> Explanation {
    factual_observed(model, embedding, &Noop)
}

/// [`factual`] with an [`ExplanationProduced`] latency event reported to
/// `obs`. Subscribers observe only: the explanation is identical for any
/// `obs`.
pub fn factual_observed(
    model: &AguaModel,
    embedding: &Matrix,
    obs: &dyn Subscriber,
) -> Explanation {
    assert_eq!(embedding.rows(), 1, "single-input explanation expects one row");
    // audit:allow(wall-clock): latency telemetry only — feeds the obs
    // event's `seconds` field, never the explanation itself.
    let start = Instant::now();
    // One surrogate forward serves both the class choice and the
    // explanation (the class used to be re-derived inside).
    let (concept_probs, out_probs) = model.concept_and_output_probs(embedding);
    let class = out_probs.argmax_row(0);
    let e = explain_with(model, &concept_probs, &out_probs, class, true);
    emit(
        obs,
        ExplanationProduced {
            kind: ExplanationKind::Factual,
            output_class: e.output_class,
            seconds: start.elapsed().as_secs_f64(),
        },
    );
    e
}

/// Counterfactual explanation (§3.6): what would drive output `class`,
/// whether or not the controller chose it.
pub fn counterfactual(model: &AguaModel, embedding: &Matrix, class: usize) -> Explanation {
    counterfactual_observed(model, embedding, class, &Noop)
}

/// [`counterfactual`] with an [`ExplanationProduced`] latency event
/// reported to `obs`.
pub fn counterfactual_observed(
    model: &AguaModel,
    embedding: &Matrix,
    class: usize,
    obs: &dyn Subscriber,
) -> Explanation {
    assert_eq!(embedding.rows(), 1, "single-input explanation expects one row");
    // audit:allow(wall-clock): latency telemetry only — feeds the obs
    // event's `seconds` field, never the explanation itself.
    let start = Instant::now();
    let e = explain_class(model, embedding, class, false);
    emit(
        obs,
        ExplanationProduced {
            kind: ExplanationKind::Counterfactual,
            output_class: class,
            seconds: start.elapsed().as_secs_f64(),
        },
    );
    e
}

fn explain_class(
    model: &AguaModel,
    embedding: &Matrix,
    class: usize,
    factual: bool,
) -> Explanation {
    let (concept_probs, out_probs) = model.concept_and_output_probs(embedding);
    explain_with(model, &concept_probs, &out_probs, class, factual)
}

fn explain_with(
    model: &AguaModel,
    concept_probs: &Matrix,
    out_probs: &Matrix,
    class: usize,
    factual: bool,
) -> Explanation {
    assert!(class < model.n_outputs(), "output class out of range");
    let p = out_probs.get(0, class);
    // Factual weights sum to the class probability (Eq. 9). A
    // counterfactual class typically has probability ≈ 0, which would
    // make every bar invisible, so counterfactual weights are normalized
    // to sum to 1 — the *relative* concept ranking is what the operator
    // reads off Fig. 4b.
    let scale = if factual { p } else { 1.0 };
    Explanation {
        output_class: class,
        output_prob: p,
        factual,
        contributions: contributions_for(model, concept_probs, 0, class, scale),
    }
}

/// One request's query inside a coalesced batch: explain the
/// surrogate's own choice, or a caller-named counterfactual class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowQuery {
    /// Explain the class the surrogate picks for this row (Eq. 9).
    Factual,
    /// Explain the named class whether or not it was chosen (§3.6).
    Counterfactual(usize),
}

/// Per-row explanations for a batch of independent single-input
/// queries — the engine's request-coalescing kernel. One shared δ/Ω
/// forward serves every row; row `r`'s explanation is then computed by
/// the same attribution expressions as [`factual`] /
/// [`counterfactual`] read from row `r`.
///
/// Every kernel under the forward is row-local with a fixed
/// k-ascending accumulation order (matmul per-element chains,
/// LayerNorm and softmax entirely within a row), so row `r` of the
/// batched forward is bitwise the forward of row `r` alone.
//= spec: specs/serve-protocol.toml#coalesce-byte-identity
//# A coalesced batch's per-row explanations MUST be byte-identical to
//# the explanations produced by sequential single-input calls, at any
//# worker thread count and under any batch composition.
pub fn explain_rows(
    model: &AguaModel,
    embeddings: &Matrix,
    queries: &[RowQuery],
) -> Vec<Explanation> {
    assert!(embeddings.rows() > 0, "empty batch");
    assert_eq!(embeddings.rows(), queries.len(), "one query per embedding row");
    for q in queries {
        if let RowQuery::Counterfactual(class) = q {
            assert!(*class < model.n_outputs(), "output class out of range");
        }
    }
    let (concept_probs, out_probs) = model.concept_and_output_probs(embeddings);
    queries
        .iter()
        .enumerate()
        .map(|(r, q)| {
            let (class, factual) = match q {
                RowQuery::Factual => (out_probs.argmax_row(r), true),
                RowQuery::Counterfactual(class) => (*class, false),
            };
            let p = out_probs.get(r, class);
            // The same factual/counterfactual normalization rule as
            // `explain_with` (see the comment there).
            let scale = if factual { p } else { 1.0 };
            Explanation {
                output_class: class,
                output_prob: p,
                factual,
                contributions: contributions_for(model, &concept_probs, r, class, scale),
            }
        })
        .collect()
}

/// Batched explanation (§3.6): contributions averaged over a batch of
/// embeddings, explaining `class` (commonly the majority predicted
/// class of the batch).
pub fn batched(model: &AguaModel, embeddings: &Matrix, class: usize) -> BatchedExplanation {
    batched_observed(model, embeddings, class, &Noop)
}

/// [`batched`] with an [`ExplanationProduced`] latency event reported to
/// `obs`.
pub fn batched_observed(
    model: &AguaModel,
    embeddings: &Matrix,
    class: usize,
    obs: &dyn Subscriber,
) -> BatchedExplanation {
    // audit:allow(wall-clock): latency telemetry only — feeds the obs
    // event's `seconds` field, never the explanation itself.
    let start = Instant::now();
    let b = batched_inner(model, embeddings, class);
    emit(
        obs,
        ExplanationProduced {
            kind: ExplanationKind::Batched,
            output_class: class,
            seconds: start.elapsed().as_secs_f64(),
        },
    );
    b
}

//= spec: specs/determinism.toml#batched-shared-kernels
//# compute through the same shared kernels as the one-at-a-time path
fn batched_inner(model: &AguaModel, embeddings: &Matrix, class: usize) -> BatchedExplanation {
    assert!(embeddings.rows() > 0, "empty batch");
    assert!(class < model.n_outputs(), "output class out of range");
    // One δ forward shared by the contribution vectors and the class
    // probabilities (this used to run the surrogate twice per batch).
    let (concept_probs, out_probs) = model.concept_and_output_probs(embeddings);
    let d = model.concepts() * model.k();
    let w = model.output_mapping.weights();
    let spread_bias = model.output_mapping.bias().get(0, class) / d as f32;
    // Gather the class column of W once; the per-row loop then reads it
    // contiguously instead of striding down the weight matrix n times.
    let wcol: Vec<f32> = (0..d).map(|j| w.get(j, class)).collect();
    batched_from_probs(
        concept_probs,
        &out_probs,
        class,
        &wcol,
        spread_bias,
        &model.concept_names,
        model.k(),
    )
}

/// Eq. 8–10 over a whole batch, shared by the `f32` and quantized
/// batched paths once each has produced its concept/output
/// probabilities and gathered its class column of Ω.
///
/// The concept-probability matrix is transformed **in place** into
/// per-row contribution vectors on the parallel backend — no per-row
/// `ConceptContribution` vectors, name lookups, or sorts (the old path
/// cloned and sorted `C` strings per input, serializing most of the
/// batch work). Every row is transformed entirely within itself in
/// fixed column order, so the matrix is byte-identical at any thread
/// count; the mean reduction then runs sequentially in ascending row
/// order, keeping the whole explanation byte-identical to one thread.
fn batched_from_probs(
    mut contrib: Matrix,
    out_probs: &Matrix,
    class: usize,
    wcol: &[f32],
    spread_bias: f32,
    concept_names: &[String],
    k: usize,
) -> BatchedExplanation {
    let n = contrib.rows();
    let c = concept_names.len();
    agua_nn::parallel::par_for_each_rows_cost(
        &mut contrib,
        agua_nn::parallel::EXP_ELEM_FLOPS,
        |r, row| {
            let p = out_probs.get(r, class);
            // z = W⟨i⟩ ∘ s + b_i/(C·k)   (Eq. 8, before the L1 norm)
            for (v, &wv) in row.iter_mut().zip(wcol) {
                *v = wv * *v + spread_bias;
            }
            // σ(z) over all C·k entries, scaled by the class probability
            // (Eq. 9–10) — the same expressions as `contributions_for`.
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v = p * *v / sum;
            }
        },
    );

    let mut mean_weight = vec![0.0f32; c];
    let mut mean_per_class = vec![vec![0.0f32; k]; c];
    let mut mean_p = 0.0;
    for r in 0..n {
        mean_p += out_probs.get(r, class);
        let row = contrib.row(r);
        for (g, group) in row.chunks_exact(k).enumerate() {
            let mut row_weight = 0.0f32;
            for (j, &v) in group.iter().enumerate() {
                mean_per_class[g][j] += v;
                row_weight += v;
            }
            mean_weight[g] += row_weight;
        }
    }
    let inv = 1.0 / n as f32;
    let mut contributions: Vec<ConceptContribution> = (0..c)
        .map(|g| ConceptContribution {
            concept: concept_names[g].clone(),
            weight: mean_weight[g] * inv,
            per_class: mean_per_class[g].iter().map(|v| v * inv).collect(),
        })
        .collect();
    contributions.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));

    BatchedExplanation {
        output_class: class,
        mean_output_prob: mean_p * inv,
        batch_size: n,
        contributions,
    }
}

/// Batched explanation from the **int8 quantized** surrogate: one
/// quantized δ forward (fused lane kernels) plus the same in-place
/// Eq. 8–10 row transform as [`batched`]. The class column of Ω is
/// dequantized once (`q · scale`), so the `f32` epilogue arithmetic is
/// identical to [`batched_quantized_reference`]'s per-row oracle and
/// the two produce byte-identical explanations at any thread count.
pub fn batched_quantized(
    q: &QuantizedAguaModel,
    embeddings: &Matrix,
    class: usize,
) -> BatchedExplanation {
    batched_quantized_observed(q, embeddings, class, &Noop)
}

/// [`batched_quantized`] with an [`ExplanationProduced`] latency event
/// reported to `obs`.
pub fn batched_quantized_observed(
    q: &QuantizedAguaModel,
    embeddings: &Matrix,
    class: usize,
    obs: &dyn Subscriber,
) -> BatchedExplanation {
    // audit:allow(wall-clock): latency telemetry only — feeds the obs
    // event's `seconds` field, never the explanation itself.
    let start = Instant::now();
    assert!(embeddings.rows() > 0, "empty batch");
    assert!(class < q.n_outputs, "output class out of range");
    let (concept_probs, out_probs) = q.concept_and_output_probs(embeddings);
    let d = q.concepts * q.k;
    let wcol = q.omega.dequantized_row(class);
    let spread_bias = q.omega.bias[class] / d as f32;
    let b = batched_from_probs(
        concept_probs,
        &out_probs,
        class,
        &wcol,
        spread_bias,
        &q.concept_names,
        q.k,
    );
    emit(
        obs,
        ExplanationProduced {
            kind: ExplanationKind::Batched,
            output_class: class,
            seconds: start.elapsed().as_secs_f64(),
        },
    );
    b
}

/// Per-row oracle for [`batched_quantized`]: two quantized surrogate
/// forwards and one explanation per input through the same Eq. 8–10
/// expressions, averaged in ascending row order. Same arithmetic and
/// accumulation chains as the batched path — byte-identical output,
/// kept (like [`batched_reference`]) for tests and benches.
pub fn batched_quantized_reference(
    q: &QuantizedAguaModel,
    embeddings: &Matrix,
    class: usize,
) -> BatchedExplanation {
    assert!(embeddings.rows() > 0, "empty batch");
    assert!(class < q.n_outputs, "output class out of range");
    let concept_probs = q.concept_probs(embeddings);
    let out_probs = q.predict_probs(embeddings);
    let n = embeddings.rows();
    let c = q.concepts;
    let k = q.k;
    let d = c * k;
    let wcol = q.omega.dequantized_row(class);
    let spread_bias = q.omega.bias[class] / d as f32;

    let mut mean_weight = vec![0.0f32; c];
    let mut mean_per_class = vec![vec![0.0f32; k]; c];
    let mut mean_p = 0.0;
    for r in 0..n {
        let p = out_probs.get(r, class);
        mean_p += p;
        // z = W⟨i⟩ ∘ s + b_i/(C·k)   (Eq. 8, before the L1 norm)
        let z: Vec<f32> = wcol
            .iter()
            .enumerate()
            .map(|(j, &wv)| wv * concept_probs.get(r, j) + spread_bias)
            .collect();
        debug_assert_eq!(z.len(), d);
        let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = z.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for g in 0..c {
            let mut row_weight = 0.0f32;
            for j in 0..k {
                let v = p * exps[g * k + j] / sum;
                mean_per_class[g][j] += v;
                row_weight += v;
            }
            mean_weight[g] += row_weight;
        }
    }
    let inv = 1.0 / n as f32;
    let mut contributions: Vec<ConceptContribution> = (0..c)
        .map(|g| ConceptContribution {
            concept: q.concept_names[g].clone(),
            weight: mean_weight[g] * inv,
            per_class: mean_per_class[g].iter().map(|v| v * inv).collect(),
        })
        .collect();
    contributions.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));

    BatchedExplanation {
        output_class: class,
        mean_output_prob: mean_p * inv,
        batch_size: n,
        contributions,
    }
}

/// The retired batched implementation, kept — like
/// [`agua_nn::parallel::reference`] keeps the scoped-spawn dispatcher —
/// so `bench_parallel` can measure the rewritten [`batched`] path
/// against the code behind the sub-1× parallel regression it fixes.
///
/// This path runs the surrogate forward **twice** over the batch
/// ([`AguaModel::concept_probs`] and then [`AguaModel::predict_probs`],
/// each a full δ pass) and builds, sorts, and name-matches a fresh
/// [`ConceptContribution`] vector per input: `C` string clones, a sort,
/// and a linear name lookup per row, all outside the parallel kernels.
/// The per-element arithmetic and every accumulation order are the same
/// as [`batched`]'s, so the two produce byte-identical explanations —
/// only the wall-clock differs.
pub fn batched_reference(
    model: &AguaModel,
    embeddings: &Matrix,
    class: usize,
) -> BatchedExplanation {
    assert!(embeddings.rows() > 0, "empty batch");
    assert!(class < model.n_outputs(), "output class out of range");
    let concept_probs = model.concept_probs(embeddings);
    let out_probs = model.predict_probs(embeddings);
    let n = embeddings.rows();
    let c = model.concepts();
    let k = model.k();

    let mut mean_weight = vec![0.0f32; c];
    let mut mean_per_class = vec![vec![0.0f32; k]; c];
    let mut mean_p = 0.0;
    for r in 0..n {
        let p = out_probs.get(r, class);
        mean_p += p;
        for contribution in contributions_for(model, &concept_probs, r, class, p) {
            let g = model
                .concept_names
                .iter()
                .position(|name| *name == contribution.concept)
                .expect("contribution names come from the model");
            mean_weight[g] += contribution.weight;
            for (j, &v) in contribution.per_class.iter().enumerate() {
                mean_per_class[g][j] += v;
            }
        }
    }
    let inv = 1.0 / n as f32;
    let mut contributions: Vec<ConceptContribution> = (0..c)
        .map(|g| ConceptContribution {
            concept: model.concept_names[g].clone(),
            weight: mean_weight[g] * inv,
            per_class: mean_per_class[g].iter().map(|v| v * inv).collect(),
        })
        .collect();
    contributions.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));

    BatchedExplanation {
        output_class: class,
        mean_output_prob: mean_p * inv,
        batch_size: n,
        contributions,
    }
}

/// Mean expected concept intensity over a batch of embeddings: for each
/// concept, `Σ_j (j/(k−1)) · p(class j)`, averaged over the batch — a
/// scalar in `[0, 1]` per concept describing how strongly the *inputs*
/// exhibit it, independent of any output class. This is the input-level
/// view used for trace tagging in the drift experiments (paper §5.2.1
/// aggregates "the dominant concepts of the inputs").
pub fn concept_intensities(model: &AguaModel, embeddings: &Matrix) -> Vec<f32> {
    assert!(embeddings.rows() > 0, "empty batch");
    let probs = model.concept_probs(embeddings);
    let c = model.concepts();
    let k = model.k();
    let mut out = vec![0.0f32; c];
    for r in 0..embeddings.rows() {
        for g in 0..c {
            for j in 0..k {
                out[g] += (j as f32 / (k - 1).max(1) as f32) * probs.get(r, g * k + j);
            }
        }
    }
    for v in &mut out {
        *v /= embeddings.rows() as f32;
    }
    out
}

/// Names of the `n` concepts with the highest mean intensity in a batch.
pub fn top_input_concepts(model: &AguaModel, embeddings: &Matrix, n: usize) -> Vec<String> {
    let intensities = concept_intensities(model, embeddings);
    let mut order: Vec<usize> = (0..intensities.len()).collect();
    order
        .sort_by(|&a, &b| intensities[b].partial_cmp(&intensities[a]).expect("finite intensities"));
    order.into_iter().take(n).map(|i| model.concept_names[i].clone()).collect()
}

/// The majority predicted class of a batch — the natural class to pass to
/// [`batched`].
pub fn majority_class(model: &AguaModel, embeddings: &Matrix) -> usize {
    let preds = model.predict(embeddings);
    let mut counts = vec![0usize; model.n_outputs()];
    for p in preds {
        counts[p] += 1;
    }
    let mut best = 0;
    for (i, &v) in counts.iter().enumerate().skip(1) {
        if v > counts[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{Concept, ConceptSet};
    use crate::surrogate::{SurrogateDataset, TrainParams};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A controller whose output is 1 exactly when concept "Trigger" is
    /// high; concept "Decoy" is uncorrelated noise.
    fn trained_model() -> (AguaModel, Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut outputs = Vec::new();
        for _ in 0..600 {
            let trigger: f32 = rng.random_range(0.0..1.0);
            let decoy: f32 = rng.random_range(0.0..1.0);
            rows.push(vec![trigger, decoy, rng.random_range(-0.05..0.05)]);
            let q = |v: f32| {
                if v <= 0.33 {
                    0
                } else if v <= 0.66 {
                    1
                } else {
                    2
                }
            };
            labels.push(vec![q(trigger), q(decoy)]);
            outputs.push(usize::from(trigger > 0.6));
        }
        let concepts = ConceptSet::new(vec![
            Concept::new("Trigger", "trigger concept"),
            Concept::new("Decoy", "decoy concept"),
        ]);
        let embeddings = Matrix::from_rows(&rows);
        let ds = SurrogateDataset {
            embeddings: embeddings.clone(),
            concept_labels: labels,
            outputs: outputs.clone(),
        };
        let model = AguaModel::fit(&concepts, 3, 2, &ds, &TrainParams::fast());
        (model, embeddings, outputs)
    }

    #[test]
    fn factual_explanation_ranks_the_causal_concept_first() {
        let (model, _, _) = trained_model();
        // A clearly-triggered input.
        let x = Matrix::row_vector(&[0.95, 0.5, 0.0]);
        let e = factual(&model, &x);
        assert_eq!(e.output_class, 1, "high trigger must predict class 1");
        assert_eq!(e.contributions[0].concept, "Trigger");
        assert!(e.factual);
    }

    #[test]
    fn contributions_sum_to_the_class_probability() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.9, 0.2, 0.0]);
        let e = factual(&model, &x);
        let total: f32 = e.contributions.iter().map(|c| c.weight).sum();
        assert!((total - e.output_prob).abs() < 1e-4, "{total} vs {}", e.output_prob);
    }

    #[test]
    fn per_class_breakdown_sums_to_concept_weight() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.5, 0.5, 0.0]);
        let e = factual(&model, &x);
        for c in &e.contributions {
            let s: f32 = c.per_class.iter().sum();
            assert!((s - c.weight).abs() < 1e-5);
        }
    }

    #[test]
    fn counterfactual_targets_the_requested_class() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.9, 0.5, 0.0]);
        let e = counterfactual(&model, &x, 0);
        assert_eq!(e.output_class, 0);
        assert!(!e.factual);
        assert!(e.output_prob < 0.5, "class 0 is not chosen here");
        // For class 0 the *low* trigger class must matter: the dominant
        // per-class entry of Trigger should not be the high class.
        let trigger =
            e.contributions.iter().find(|c| c.concept == "Trigger").expect("trigger present");
        let best_class = trigger
            .per_class
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_ne!(best_class, 2, "absence should drive the counterfactual");
    }

    #[test]
    fn batched_explanation_averages_over_inputs() {
        let (model, embeddings, _) = trained_model();
        let class = majority_class(&model, &embeddings);
        let b = batched(&model, &embeddings, class);
        assert_eq!(b.batch_size, embeddings.rows());
        let total: f32 = b.contributions.iter().map(|c| c.weight).sum();
        assert!((total - b.mean_output_prob).abs() < 1e-3);
    }

    /// Every float of a batched explanation, as bits, for byte-identity
    /// comparisons.
    fn explanation_bits(b: &BatchedExplanation) -> Vec<u32> {
        let mut out = vec![b.mean_output_prob.to_bits()];
        for c in &b.contributions {
            out.push(c.weight.to_bits());
            out.extend(c.per_class.iter().map(|v| v.to_bits()));
        }
        out
    }

    #[test]
    fn batched_is_byte_identical_to_the_retired_reference() {
        let (model, embeddings, _) = trained_model();
        for class in 0..model.n_outputs() {
            let reference = batched_reference(&model, &embeddings, class);
            for threads in [1, 4] {
                let fixed = agua_nn::parallel::with_threads(threads, || {
                    batched(&model, &embeddings, class)
                });
                assert_eq!(fixed.batch_size, reference.batch_size);
                let names: Vec<&str> =
                    fixed.contributions.iter().map(|c| c.concept.as_str()).collect();
                let ref_names: Vec<&str> =
                    reference.contributions.iter().map(|c| c.concept.as_str()).collect();
                assert_eq!(names, ref_names, "class {class} threads {threads}");
                assert_eq!(
                    explanation_bits(&fixed),
                    explanation_bits(&reference),
                    "class {class} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn quantized_batched_is_byte_identical_to_per_row_reference() {
        let (model, embeddings, _) = trained_model();
        let q = crate::quantized::QuantizedAguaModel::from_model(&model);
        for class in 0..model.n_outputs() {
            let reference = batched_quantized_reference(&q, &embeddings, class);
            for threads in [1, 2, 4, 7] {
                let fast = agua_nn::parallel::with_thread_config(
                    agua_nn::parallel::ThreadConfig { threads, min_flops: 0 },
                    || batched_quantized(&q, &embeddings, class),
                );
                assert_eq!(fast.batch_size, reference.batch_size);
                let names: Vec<&str> =
                    fast.contributions.iter().map(|c| c.concept.as_str()).collect();
                let ref_names: Vec<&str> =
                    reference.contributions.iter().map(|c| c.concept.as_str()).collect();
                assert_eq!(names, ref_names, "class {class} threads {threads}");
                assert_eq!(
                    explanation_bits(&fast),
                    explanation_bits(&reference),
                    "class {class} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn quantized_batched_tracks_the_f32_batched_explanation() {
        let (model, embeddings, _) = trained_model();
        let q = crate::quantized::QuantizedAguaModel::from_model(&model);
        let class = majority_class(&model, &embeddings);
        let f = batched(&model, &embeddings, class);
        let qb = batched_quantized(&q, &embeddings, class);
        // Quantization perturbs the weights, so only closeness — not
        // identity — is expected against the f32 explanation.
        assert!(
            (f.mean_output_prob - qb.mean_output_prob).abs() < 0.05,
            "{} vs {}",
            f.mean_output_prob,
            qb.mean_output_prob
        );
        let total: f32 = qb.contributions.iter().map(|c| c.weight).sum();
        assert!((total - qb.mean_output_prob).abs() < 1e-3);
    }

    /// Randomized byte-identity suite; compiled out under Miri.
    #[cfg(not(miri))]
    mod randomized {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        const THREADS: [usize; 4] = [1, 2, 4, 7];

        /// One trained + quantized fixture shared across cases (the fit
        /// dominates the suite's runtime otherwise).
        fn quantized_fixture() -> &'static (crate::quantized::QuantizedAguaModel, Matrix) {
            static CELL: OnceLock<(crate::quantized::QuantizedAguaModel, Matrix)> = OnceLock::new();
            CELL.get_or_init(|| {
                let (model, embeddings, _) = trained_model();
                (crate::quantized::QuantizedAguaModel::from_model(&model), embeddings)
            })
        }

        proptest! {
            /// The batched quantized path vs the per-row quantized
            /// oracle, bitwise, over batch windows, classes, and thread
            /// counts 1/2/4/7.
            #[test]
            fn quantized_batched_matches_per_row_reference(
                start in 0usize..600,
                len in 1usize..80,
                class in 0usize..2,
                tidx in 0usize..THREADS.len(),
            ) {
                let (q, embeddings) = quantized_fixture();
                let start = start.min(embeddings.rows() - 1);
                let len = len.min(embeddings.rows() - start);
                let rows: Vec<Vec<f32>> =
                    (start..start + len).map(|r| embeddings.row(r).to_vec()).collect();
                let batch = Matrix::from_rows(&rows);
                let reference = batched_quantized_reference(q, &batch, class);
                let threads = THREADS[tidx];
                let fast = agua_nn::parallel::with_thread_config(
                    agua_nn::parallel::ThreadConfig { threads, min_flops: 0 },
                    || batched_quantized(q, &batch, class),
                );
                prop_assert_eq!(explanation_bits(&reference), explanation_bits(&fast));
            }
        }
    }

    /// Every float of a single-input explanation, as bits.
    fn single_bits(e: &Explanation) -> Vec<u32> {
        let mut out = vec![e.output_prob.to_bits()];
        for c in &e.contributions {
            out.push(c.weight.to_bits());
            out.extend(c.per_class.iter().map(|v| v.to_bits()));
        }
        out
    }

    #[test]
    fn explain_rows_is_byte_identical_to_sequential_single_calls() {
        let (model, embeddings, _) = trained_model();
        let rows: Vec<Vec<f32>> = (0..32).map(|r| embeddings.row(r).to_vec()).collect();
        let batch = Matrix::from_rows(&rows);
        // Mixed factual/counterfactual composition across the batch.
        let queries: Vec<RowQuery> = (0..rows.len())
            .map(|r| match r % 3 {
                0 => RowQuery::Factual,
                1 => RowQuery::Counterfactual(0),
                _ => RowQuery::Counterfactual(1),
            })
            .collect();
        for threads in [1, 2, 4, 7] {
            let coalesced = agua_nn::parallel::with_thread_config(
                agua_nn::parallel::ThreadConfig { threads, min_flops: 0 },
                || explain_rows(&model, &batch, &queries),
            );
            assert_eq!(coalesced.len(), rows.len());
            for (r, (row, query)) in rows.iter().zip(&queries).enumerate() {
                let x = Matrix::row_vector(row);
                let single = match query {
                    RowQuery::Factual => factual(&model, &x),
                    RowQuery::Counterfactual(class) => counterfactual(&model, &x, *class),
                };
                assert_eq!(coalesced[r].output_class, single.output_class, "row {r}");
                assert_eq!(coalesced[r].factual, single.factual, "row {r}");
                let names: Vec<&str> =
                    coalesced[r].contributions.iter().map(|c| c.concept.as_str()).collect();
                let single_names: Vec<&str> =
                    single.contributions.iter().map(|c| c.concept.as_str()).collect();
                assert_eq!(names, single_names, "row {r} threads {threads}");
                assert_eq!(
                    single_bits(&coalesced[r]),
                    single_bits(&single),
                    "row {r} threads {threads}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one query per embedding row")]
    fn explain_rows_validates_query_count() {
        let (model, embeddings, _) = trained_model();
        let _ = explain_rows(&model, &embeddings, &[RowQuery::Factual]);
    }

    #[test]
    #[should_panic(expected = "output class out of range")]
    fn explain_rows_validates_counterfactual_class() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.5, 0.5, 0.0]);
        let _ = explain_rows(&model, &x, &[RowQuery::Counterfactual(9)]);
    }

    #[test]
    fn single_and_batched_agree_on_a_singleton_batch() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.8, 0.3, 0.0]);
        let f = factual(&model, &x);
        let b = batched(&model, &x, f.output_class);
        assert_eq!(b.contributions[0].concept, f.contributions[0].concept);
        assert!((b.contributions[0].weight - f.contributions[0].weight).abs() < 1e-5);
    }

    #[test]
    fn render_produces_bars_for_top_concepts() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.9, 0.1, 0.0]);
        let text = factual(&model, &x).render(2);
        assert!(text.contains("Factual explanation"));
        assert!(text.contains('#'));
        assert!(text.contains("Trigger"));
    }

    #[test]
    #[should_panic(expected = "output class out of range")]
    fn counterfactual_validates_class() {
        let (model, _, _) = trained_model();
        let x = Matrix::row_vector(&[0.5, 0.5, 0.0]);
        let _ = counterfactual(&model, &x, 9);
    }

    #[test]
    fn concept_intensities_are_bounded_and_track_inputs() {
        let (model, _, _) = trained_model();
        // High-trigger inputs must show a higher Trigger intensity than
        // low-trigger inputs.
        let high = Matrix::from_rows(&vec![vec![0.95, 0.5, 0.0]; 5]);
        let low = Matrix::from_rows(&vec![vec![0.05, 0.5, 0.0]; 5]);
        let hi = concept_intensities(&model, &high);
        let li = concept_intensities(&model, &low);
        assert!(hi.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(li.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Concept 0 is "Trigger".
        assert!(hi[0] > li[0] + 0.3, "trigger intensity must follow the input: {hi:?} vs {li:?}");
    }

    #[test]
    fn top_input_concepts_rank_by_intensity() {
        let (model, _, _) = trained_model();
        let high = Matrix::from_rows(&vec![vec![0.95, 0.1, 0.0]; 4]);
        let top = top_input_concepts(&model, &high, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0], "Trigger", "top concepts: {top:?}");
    }
}
