//! Int8 quantized surrogate inference behind a fidelity gate.
//!
//! [`QuantizedAguaModel`] mirrors a trained [`AguaModel`] with int8
//! weights (per-tensor symmetric, `agua_nn::quant`): δ's two linear
//! layers and Ω's single linear layer quantize to a quarter of the
//! `f32` footprint, while the ReLU/LayerNorm/softmax stages stay exact
//! in `f32`. The path is **inference-only** — training always runs in
//! `f32` — and it is never handed out silently: callers go through
//! [`QuantizedAguaModel::from_model_gated`], which measures the
//! fidelity drop against the `f32` surrogate on a calibration batch
//! (the paper's Table-2-style agreement metric, Eq. 11) and refuses the
//! swap when the drop exceeds the caller's ε.

use crate::surrogate::{grouped_softmax_rows_inplace, AguaModel};
use agua_nn::{softmax_rows, Matrix, QuantError, QuantizedLinear, QuantizedMlp};

/// Result of the quantization fidelity gate: fidelities of both models
/// against the same reference outputs, and whether the drop is inside
/// the caller's tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantFidelityReport {
    /// Fidelity of the `f32` surrogate on the calibration batch.
    pub f32_fidelity: f32,
    /// Fidelity of the quantized surrogate on the same batch.
    pub quantized_fidelity: f32,
    /// `f32_fidelity − quantized_fidelity` (negative when quantization
    /// happens to agree more often).
    pub drop: f32,
    /// The tolerance the gate was evaluated against.
    pub epsilon: f32,
    /// `drop <= epsilon`.
    pub passes: bool,
}

/// An int8 inference-only mirror of a trained [`AguaModel`].
#[derive(Debug, Clone)]
pub struct QuantizedAguaModel {
    /// Quantized concept mapping function δ.
    pub delta: QuantizedMlp,
    /// Quantized output mapping function Ω.
    pub omega: QuantizedLinear,
    /// Number of concepts `C`.
    pub concepts: usize,
    /// Similarity classes per concept `k`.
    pub k: usize,
    /// Number of output classes.
    pub n_outputs: usize,
    /// Concept names, in δ's group order.
    pub concept_names: Vec<String>,
}

impl QuantizedAguaModel {
    /// Quantizes a trained surrogate without measuring fidelity, or
    /// reports which weight tensor does not admit a usable symmetric
    /// scale. Prefer [`QuantizedAguaModel::from_model_gated`] anywhere
    /// the quantized model replaces the `f32` one.
    pub fn try_from_model(model: &AguaModel) -> Result<Self, QuantError> {
        let om = model.output_mapping.linear();
        Ok(Self {
            delta: QuantizedMlp::try_from_mlp(model.concept_mapping.mlp())?,
            omega: QuantizedLinear::try_from_f32(&om.weight.value, &om.bias.value)?,
            concepts: model.concepts(),
            k: model.k(),
            n_outputs: model.n_outputs(),
            concept_names: model.concept_names.clone(),
        })
    }

    /// [`QuantizedAguaModel::try_from_model`] for callers that treat a
    /// degenerate scale as a bug.
    ///
    /// # Panics
    /// Panics if any weight tensor's scale is zero or non-finite.
    pub fn from_model(model: &AguaModel) -> Self {
        match Self::try_from_model(model) {
            Ok(q) => q,
            Err(e) => panic!("quantizing surrogate failed: {e}"),
        }
    }

    /// Quantizes `model` and admits the result only if its fidelity on
    /// `embeddings` (against `controller_outputs`, Eq. 11) drops by at
    /// most `epsilon` relative to the `f32` surrogate. On failure the
    /// quantized model is withheld and only the report comes back.
    //= spec: specs/quantization.toml#fidelity-gate
    //# its fidelity may drop at most epsilon below the f32 surrogate's
    //# fidelity on the calibration batch
    pub fn from_model_gated(
        model: &AguaModel,
        embeddings: &Matrix,
        controller_outputs: &[usize],
        epsilon: f32,
    ) -> Result<(Self, QuantFidelityReport), QuantFidelityReport> {
        let quantized = Self::from_model(model);
        let report = quantized.fidelity_report(model, embeddings, controller_outputs, epsilon);
        if report.passes {
            Ok((quantized, report))
        } else {
            Err(report)
        }
    }

    /// Measures both models' fidelity against `controller_outputs` and
    /// evaluates the `drop <= epsilon` gate.
    pub fn fidelity_report(
        &self,
        model: &AguaModel,
        embeddings: &Matrix,
        controller_outputs: &[usize],
        epsilon: f32,
    ) -> QuantFidelityReport {
        let f32_fidelity = model.fidelity(embeddings, controller_outputs);
        let quantized_fidelity = self.fidelity(embeddings, controller_outputs);
        let drop = f32_fidelity - quantized_fidelity;
        QuantFidelityReport {
            f32_fidelity,
            quantized_fidelity,
            drop,
            epsilon,
            passes: drop <= epsilon,
        }
    }

    /// δ's concept-class probabilities (quantized forward, exact `f32`
    /// grouped softmax).
    pub fn concept_probs(&self, embeddings: &Matrix) -> Matrix {
        let mut probs = self.delta.infer(embeddings);
        debug_assert_eq!(probs.cols(), self.concepts * self.k);
        grouped_softmax_rows_inplace(&mut probs, self.k);
        probs
    }

    /// Concept-class probabilities **and** output probabilities from a
    /// single quantized δ forward pass — the quantized mirror of
    /// `AguaModel::concept_and_output_probs`, serving the batched
    /// quantized explanation path.
    pub fn concept_and_output_probs(&self, embeddings: &Matrix) -> (Matrix, Matrix) {
        let concept_probs = self.concept_probs(embeddings);
        let out_probs = softmax_rows(&self.omega.infer(&concept_probs));
        (concept_probs, out_probs)
    }

    /// Surrogate output logits.
    pub fn predict_logits(&self, embeddings: &Matrix) -> Matrix {
        self.omega.infer(&self.concept_probs(embeddings))
    }

    /// Surrogate output probabilities.
    pub fn predict_probs(&self, embeddings: &Matrix) -> Matrix {
        softmax_rows(&self.predict_logits(embeddings))
    }

    /// Surrogate argmax predictions.
    pub fn predict(&self, embeddings: &Matrix) -> Vec<usize> {
        let logits = self.predict_logits(embeddings);
        (0..embeddings.rows()).map(|r| logits.argmax_row(r)).collect()
    }

    /// The fidelity metric (Eq. 11) of the quantized surrogate.
    pub fn fidelity(&self, embeddings: &Matrix, controller_outputs: &[usize]) -> f32 {
        assert_eq!(embeddings.rows(), controller_outputs.len());
        let preds = self.predict(embeddings);
        let hits = preds.iter().zip(controller_outputs).filter(|(a, b)| a == b).count();
        hits as f32 / controller_outputs.len().max(1) as f32
    }

    /// Int8 weight bytes (δ + Ω) — a quarter of the `f32` footprint.
    pub fn weight_bytes(&self) -> usize {
        self.delta.weight_bytes() + self.omega.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::{Concept, ConceptSet};
    use crate::surrogate::{SurrogateDataset, TrainParams};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn trained_model() -> (AguaModel, Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(12);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut outputs = Vec::new();
        for _ in 0..500 {
            let a: f32 = rng.random_range(0.0..1.0);
            let b: f32 = rng.random_range(0.0..1.0);
            rows.push(vec![a, b, rng.random_range(-0.05..0.05)]);
            let q = |v: f32| {
                if v <= 0.33 {
                    0
                } else if v <= 0.66 {
                    1
                } else {
                    2
                }
            };
            labels.push(vec![q(a), q(b)]);
            outputs.push(usize::from(a > b));
        }
        let concepts =
            ConceptSet::new(vec![Concept::new("Alpha", "alpha"), Concept::new("Beta", "beta")]);
        let embeddings = Matrix::from_rows(&rows);
        let ds = SurrogateDataset {
            embeddings: embeddings.clone(),
            concept_labels: labels,
            outputs: outputs.clone(),
        };
        let model = AguaModel::fit(&concepts, 3, 2, &ds, &TrainParams::fast());
        (model, embeddings, outputs)
    }

    #[test]
    fn quantized_model_stays_close_to_f32_fidelity() {
        let (model, embeddings, outputs) = trained_model();
        let (q, report) = QuantizedAguaModel::from_model_gated(&model, &embeddings, &outputs, 0.05)
            .expect("int8 quantization must clear a 5-point fidelity budget here");
        assert!(report.passes);
        assert!(report.f32_fidelity > 0.8, "f32 fidelity {}", report.f32_fidelity);
        assert!(
            report.quantized_fidelity >= report.f32_fidelity - 0.05,
            "quantized fidelity {} vs f32 {}",
            report.quantized_fidelity,
            report.f32_fidelity
        );
        // 4× footprint: weight bytes equal the f32 parameter count of
        // the three linear layers' weights.
        assert!(q.weight_bytes() > 0);
    }

    #[test]
    fn gate_rejects_when_epsilon_is_impossible() {
        let (model, embeddings, outputs) = trained_model();
        // Corrupt the reference labels for the quantized check only by
        // demanding a *negative* drop below any attainable value.
        let res = QuantizedAguaModel::from_model_gated(&model, &embeddings, &outputs, -2.0);
        let report = res.expect_err("an impossible epsilon must fail the gate");
        assert!(!report.passes);
        assert_eq!(report.epsilon, -2.0);
    }

    #[test]
    fn degenerate_weight_scale_surfaces_as_a_typed_error() {
        let (model, ..) = trained_model();
        let mut broken = model.clone();
        let mut lin = broken.output_mapping.linear().clone();
        // Subnormal weights: max |w| / 127 underflows to a zero scale.
        lin.weight.value =
            Matrix::from_fn(lin.weight.value.rows(), lin.weight.value.cols(), |_, _| {
                f32::from_bits(1)
            });
        let n_outputs = broken.n_outputs();
        broken.output_mapping = crate::surrogate::OutputMapping::from_parts(lin, n_outputs);
        assert_eq!(QuantizedAguaModel::try_from_model(&broken).unwrap_err(), QuantError::ZeroScale);
    }

    #[test]
    fn quantized_predictions_mostly_agree_with_f32() {
        let (model, embeddings, _) = trained_model();
        let q = QuantizedAguaModel::from_model(&model);
        let f = model.predict(&embeddings);
        let qp = q.predict(&embeddings);
        let agree = f.iter().zip(&qp).filter(|(a, b)| a == b).count();
        assert!(
            agree as f32 / f.len() as f32 > 0.9,
            "quantized agreement too low: {agree}/{}",
            f.len()
        );
    }

    #[test]
    fn concept_probs_remain_normalized_per_group() {
        let (model, embeddings, _) = trained_model();
        let q = QuantizedAguaModel::from_model(&model);
        let probs = q.concept_probs(&embeddings);
        for r in 0..5 {
            for g in 0..q.concepts {
                let mut s = 0.0f32;
                for j in 0..q.k {
                    s += probs.get(r, g * q.k + j);
                }
                assert!((s - 1.0).abs() < 1e-5, "row {r} group {g}: {s}");
            }
        }
    }
}
