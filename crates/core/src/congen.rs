//! Base-concept generation from survey text (paper §3.2, Fig. 2 stage ①).
//!
//! The paper attaches a survey paper to an LLM prompt and asks it to
//! "list and describe the key concepts in the decision y of a
//! controller", then lets the operator filter the result with the
//! inter-concept similarity check. This module reproduces that stage
//! offline: a [`SurveyCorpus`] of domain sentences (standing in for the
//! retrieved survey text) is mined for *candidate concept phrases* —
//! n-grams combining a pattern adjective with a domain noun, the exact
//! vocabulary the describer emits — which are ranked by corpus frequency,
//! named, described by the sentences that evidence them, and deduplicated
//! with the same `S_max` cosine filter the paper applies.
//!
//! The generated sets are *starting* sets: as §3.2 observes, they
//! typically need operator curation, and the `concept_generation`
//! experiment quantifies the fidelity gap between a generated set and
//! the curated Table 1 set.

use crate::concepts::{Concept, ConceptSet};
use agua_text::embedding::Embedder;
use agua_text::lexicon::{term_weight, DOMAIN_TERMS, PATTERN_TERMS};
use std::collections::HashMap;

/// A corpus of domain sentences playing the role of the survey paper the
/// paper feeds to its LLM.
#[derive(Debug, Clone)]
pub struct SurveyCorpus {
    /// The sentences, one knowledge nugget each.
    pub sentences: Vec<String>,
}

impl SurveyCorpus {
    /// Wraps a list of sentences.
    pub fn new(sentences: Vec<String>) -> Self {
        assert!(!sentences.is_empty(), "a survey corpus cannot be empty");
        Self { sentences }
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct GenerationConfig {
    /// Maximum number of concepts to return (after filtering).
    pub max_concepts: usize,
    /// Inter-concept similarity threshold `S_max` for deduplication.
    pub s_max: f32,
    /// Minimum corpus frequency for a candidate phrase.
    pub min_frequency: usize,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self { max_concepts: 16, s_max: 0.8, min_frequency: 2 }
    }
}

/// Mines a starting concept set from a survey corpus.
///
/// Candidate phrases are token n-grams (2–4 tokens after stopword
/// removal) that contain at least one pattern term ("volatile",
/// "increasing", …) and at least one domain term ("throughput",
/// "buffer", …). Candidates are ranked by frequency, described by the
/// sentences that contain them, and passed through the paper's `S_max`
/// redundancy filter.
pub fn generate_concepts(
    corpus: &SurveyCorpus,
    embedder: &Embedder,
    config: GenerationConfig,
) -> ConceptSet {
    assert!(config.max_concepts >= 1, "must request at least one concept");

    // 1. Candidate mining.
    // audit:allow(hash-order): counting map only — candidates are drained
    // into a Vec and fully tie-broken sorted before any ordered use.
    let mut counts: HashMap<String, usize> = HashMap::new();
    // audit:allow(hash-order): same drain-and-sort protocol as `counts`.
    let mut evidence: HashMap<String, Vec<usize>> = HashMap::new();
    for (si, sentence) in corpus.sentences.iter().enumerate() {
        let tokens = tokenize(sentence);
        for len in 2..=4usize {
            for window in tokens.windows(len) {
                if !is_candidate(window) {
                    continue;
                }
                let phrase = window.join(" ");
                *counts.entry(phrase.clone()).or_insert(0) += 1;
                let ev = evidence.entry(phrase).or_default();
                if !ev.contains(&si) {
                    ev.push(si);
                }
            }
        }
    }

    // 2. Rank by frequency (ties: longer phrases first, then lexical).
    let mut candidates: Vec<(String, usize)> =
        counts.into_iter().filter(|(_, c)| *c >= config.min_frequency).collect();
    candidates.sort_by(|a, b| {
        b.1.cmp(&a.1).then(b.0.split(' ').count().cmp(&a.0.split(' ').count())).then(a.0.cmp(&b.0))
    });

    // 3. Drop candidates subsumed by an already-chosen phrase (e.g.
    //    "increasing loss" inside "increasing packet loss").
    let mut chosen: Vec<(String, usize)> = Vec::new();
    for (phrase, count) in candidates {
        let subsumed =
            chosen.iter().any(|(p, _)| p.contains(&phrase) || phrase.contains(p.as_str()));
        if !subsumed {
            chosen.push((phrase, count));
        }
        if chosen.len() >= config.max_concepts * 3 {
            break; // leave headroom for the similarity filter
        }
    }

    // 4. Name + describe each candidate from its evidence sentences.
    let concepts: Vec<Concept> = chosen
        .iter()
        .map(|(phrase, _)| {
            let name = title_case(phrase);
            let ev = &evidence[phrase];
            let text: String = ev
                .iter()
                .take(3)
                .map(|&si| corpus.sentences[si].to_lowercase())
                .collect::<Vec<_>>()
                .join(" ");
            Concept::new(&name, &format!("{phrase}. {text}"))
        })
        .collect();

    // 5. The paper's S_max redundancy filter, then cap the set size.
    let (filtered, _removed) = ConceptSet::new(concepts).filter_redundant(embedder, config.s_max);
    let take = filtered.len().min(config.max_concepts);
    filtered.take(take)
}

fn tokenize(sentence: &str) -> Vec<String> {
    sentence
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty() && term_weight(t) > 0.0)
        .map(str::to_string)
        .collect()
}

fn is_candidate(window: &[String]) -> bool {
    let has_pattern = window.iter().any(|t| PATTERN_TERMS.contains(&t.as_str()));
    let has_domain = window.iter().any(|t| DOMAIN_TERMS.contains(&t.as_str()));
    has_pattern && has_domain
}

fn title_case(phrase: &str) -> String {
    phrase
        .split(' ')
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// A built-in ABR survey corpus: the design knowledge an adaptive-bitrate
/// survey would retrieve (buffer dynamics, throughput estimation, QoE
/// trade-offs), phrased in the pattern/domain vocabulary.
pub fn abr_survey() -> SurveyCorpus {
    SurveyCorpus::new(
        [
            "Volatile network throughput forces the controller to hedge its bitrate choices.",
            "A rapidly decreasing client buffer signals imminent stalling and demands a lower bitrate.",
            "Stable network throughput allows the controller to hold a high bitrate safely.",
            "High network throughput supports the highest video quality without stalling.",
            "Very low network throughput requires the lowest bitrate to keep playback continuous.",
            "A stable client buffer near full capacity cushions against short throughput drops.",
            "Rapidly increasing transmission time indicates network degradation ahead.",
            "Controllers anticipate congestion when transmission time is increasing while throughput is decreasing.",
            "High upcoming video size complexity means complex content that needs more bandwidth.",
            "Low upcoming video size complexity lets the controller conserve bandwidth with little quality loss.",
            "Quality of experience is decreasing whenever stalling is increasing.",
            "A volatile selected video quality annoys viewers, so controllers avoid quality fluctuations.",
            "After startup the controller switches to increasing selected video quality as the buffer grows.",
            "Moderate network throughput suggests a middle bitrate balancing quality and safety.",
            "Recovering and increasing network throughput lets the controller raise quality again.",
            "Extreme network degradation with rapidly decreasing throughput demands emergency fallback.",
            "A rapidly decreasing client buffer with volatile network throughput is the riskiest state.",
            "Stable client buffer and stable network throughput together indicate steady conditions.",
            "Increasing quality of experience follows increasing network throughput and a stable buffer.",
            "Very high network throughput with a nearly full client buffer supports maximum quality.",
            "Volatile network throughput with fluctuating transmission time requires conservative switching.",
            "Decreasing network throughput with increasing stalling means the bitrate is too high.",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    )
}

/// A built-in congestion-control survey corpus.
pub fn cc_survey() -> SurveyCorpus {
    SurveyCorpus::new(
        [
            "Rapidly increasing network latency indicates a growing bottleneck queue.",
            "Increasing packet loss rate means the sender has exceeded the available capacity.",
            "Decreasing packet loss rate signals that the congestion event is clearing.",
            "Stable network latency with very low packet loss indicates stable network conditions.",
            "Rapidly decreasing network latency shows the queue draining after a rate cut.",
            "Volatile network latency with fluctuating throughput marks volatile network conditions.",
            "Very low delivered throughput relative to capacity is low network utilization.",
            "Very high delivered throughput near capacity is high network utilization.",
            "High sending rate with increasing latency risks increasing packet loss.",
            "Low sending rate with stable latency wastes capacity through low network utilization.",
            "Stable delivered throughput with stable network latency is the target operating point.",
            "Increasing network latency with stable sending rate means competing traffic arrived.",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    )
}

/// A built-in DDoS-detection survey corpus.
pub fn ddos_survey() -> SurveyCorpus {
    SurveyCorpus::new(
        [
            "A very high request packet rate from spoofed sources marks volumetric attacks.",
            "Very high syn handshake intensity with very low ack compliance is a protocol anomaly.",
            "Stable source geographic temporal consistency characterizes benign traffic.",
            "Volatile source geographic temporal consistency reveals spoofed or distributed origins.",
            "Very low payload entropy in tiny packets indicates empty attack payloads.",
            "Very high payload entropy in large packets indicates random flood payloads.",
            "Moderate request packet rate with high ack protocol compliance is typical application behavior.",
            "A very low sparse request packet rate holding connections open is a slow attack.",
            "Stable repeated payload packet size across requests suggests scripted repeated access.",
            "Volatile request packet rate with volatile payload packet size is a behavioral anomaly.",
            "High ack protocol compliance with a completed handshake indicates protocol compliance.",
            "Increasing request packet rate from many sources precedes service denial.",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> Embedder {
        Embedder::new(512)
    }

    #[test]
    fn generates_a_bounded_nonempty_set() {
        let set = generate_concepts(&abr_survey(), &embedder(), GenerationConfig::default());
        assert!(!set.is_empty());
        assert!(set.len() <= 16);
    }

    #[test]
    fn generated_concepts_combine_pattern_and_domain_terms() {
        let set = generate_concepts(&cc_survey(), &embedder(), GenerationConfig::default());
        for c in &set.concepts {
            let lower = c.name.to_lowercase();
            let tokens: Vec<&str> = lower.split(' ').collect();
            assert!(
                tokens.iter().any(|t| PATTERN_TERMS.contains(t)),
                "{} lacks a pattern term",
                c.name
            );
            assert!(
                tokens.iter().any(|t| DOMAIN_TERMS.contains(t)),
                "{} lacks a domain term",
                c.name
            );
        }
    }

    #[test]
    fn cc_generation_finds_the_canonical_latency_concept() {
        let set = generate_concepts(&cc_survey(), &embedder(), GenerationConfig::default());
        let names: Vec<String> = set.names().iter().map(|n| n.to_lowercase()).collect();
        assert!(
            names.iter().any(|n| n.contains("latency") && n.contains("increasing")),
            "expected an increasing-latency concept in {names:?}"
        );
    }

    #[test]
    fn generation_respects_max_concepts() {
        let config = GenerationConfig { max_concepts: 4, ..GenerationConfig::default() };
        let set = generate_concepts(&abr_survey(), &embedder(), config);
        assert!(set.len() <= 4);
    }

    #[test]
    fn subsumed_phrases_are_not_duplicated() {
        let set = generate_concepts(&ddos_survey(), &embedder(), GenerationConfig::default());
        let names = set.names();
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                let (al, bl) = (a.to_lowercase(), b.to_lowercase());
                assert!(!al.contains(&bl) && !bl.contains(&al), "{a} subsumes {b}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_concepts(&abr_survey(), &embedder(), GenerationConfig::default());
        let b = generate_concepts(&abr_survey(), &embedder(), GenerationConfig::default());
        assert_eq!(a.names(), b.names());
    }

    #[test]
    fn concepts_carry_evidence_sentences_as_text() {
        let set = generate_concepts(&abr_survey(), &embedder(), GenerationConfig::default());
        for c in &set.concepts {
            assert!(c.text.len() > c.name.len(), "{} has no evidence text", c.name);
        }
    }

    #[test]
    #[should_panic(expected = "survey corpus cannot be empty")]
    fn empty_corpus_is_rejected() {
        let _ = SurveyCorpus::new(vec![]);
    }
}
