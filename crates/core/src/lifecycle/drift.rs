//! Concept-based distribution-shift detection (paper §5.2.1, Fig. 5).
//!
//! Each trace (or any batch of inputs) is tagged with its top-N concepts
//! via a batched explanation; tag proportions are compared across two
//! datasets, turning an opaque "the throughput CDF moved" observation
//! into "volatile network throughput and rapidly depleting buffers
//! increased, stable buffers decreased".

use crate::explain::top_input_concepts;
use crate::surrogate::AguaModel;
use agua_nn::Matrix;
use serde::{Deserialize, Serialize};

/// Tags each batch (one `Matrix` of embeddings per trace) with the names
/// of its `top_n` most *intense* concepts — the input-level dominance the
/// paper aggregates per trace ("we tag the traces with the top three
/// identified concepts").
pub fn tag_batches(model: &AguaModel, batches: &[Matrix], top_n: usize) -> Vec<Vec<String>> {
    batches.iter().map(|embeddings| top_input_concepts(model, embeddings, top_n)).collect()
}

/// Tags two datasets of traces with their top `top_n` concepts by
/// *relative* intensity: per-concept intensities are z-scored across the
/// union of both datasets, so a trace's tags name the concepts that are
/// unusually strong for it rather than the concepts that are strong
/// everywhere. This is the discriminative tagging the Fig. 5 comparison
/// needs — globally-dominant concepts cancel out of the z-score and the
/// era-specific conditions surface.
pub fn tag_datasets(
    model: &AguaModel,
    old_batches: &[Matrix],
    new_batches: &[Matrix],
    top_n: usize,
) -> (Vec<Vec<String>>, Vec<Vec<String>>) {
    let old_int: Vec<Vec<f32>> =
        old_batches.iter().map(|b| crate::explain::concept_intensities(model, b)).collect();
    let new_int: Vec<Vec<f32>> =
        new_batches.iter().map(|b| crate::explain::concept_intensities(model, b)).collect();

    let c = model.concepts();
    let all: Vec<&Vec<f32>> = old_int.iter().chain(new_int.iter()).collect();
    let n = all.len().max(1) as f32;
    let mut mean = vec![0.0f32; c];
    for row in &all {
        for (m, &v) in mean.iter_mut().zip(row.iter()) {
            *m += v / n;
        }
    }
    let mut std = vec![0.0f32; c];
    for row in &all {
        for i in 0..c {
            std[i] += (row[i] - mean[i]) * (row[i] - mean[i]) / n;
        }
    }
    for s in &mut std {
        *s = s.sqrt().max(1e-6);
    }

    let tag = |rows: &[Vec<f32>]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|row| {
                let z: Vec<f32> =
                    row.iter().enumerate().map(|(i, &v)| (v - mean[i]) / std[i]).collect();
                let mut order: Vec<usize> = (0..c).collect();
                order.sort_by(|&a, &b| z[b].partial_cmp(&z[a]).expect("finite z"));
                order.into_iter().take(top_n).map(|i| model.concept_names[i].clone()).collect()
            })
            .collect()
    };
    (tag(&old_int), tag(&new_int))
}

/// Normalized proportion of tags naming each concept, over a tagged
/// dataset. Proportions sum to 1 across concepts (when any tags exist).
pub fn concept_proportions(tags: &[Vec<String>], concept_names: &[String]) -> Vec<f32> {
    let mut counts = vec![0usize; concept_names.len()];
    let mut total = 0usize;
    for trace_tags in tags {
        for tag in trace_tags {
            if let Some(i) = concept_names.iter().position(|n| n == tag) {
                counts[i] += 1;
                total += 1;
            }
        }
    }
    counts.iter().map(|&c| c as f32 / total.max(1) as f32).collect()
}

/// One concept's proportion change between datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConceptShift {
    /// Concept name.
    pub concept: String,
    /// Proportion in the old (training) dataset.
    pub old: f32,
    /// Proportion in the new (deployment) dataset.
    pub new: f32,
    /// `new − old`.
    pub delta: f32,
}

/// Compares concept proportions between two datasets; returns shifts
/// sorted by descending delta (biggest increases first).
pub fn detect_shift(
    old_props: &[f32],
    new_props: &[f32],
    concept_names: &[String],
) -> Vec<ConceptShift> {
    assert_eq!(old_props.len(), concept_names.len(), "one proportion per concept");
    assert_eq!(new_props.len(), concept_names.len(), "one proportion per concept");
    let mut shifts: Vec<ConceptShift> = concept_names
        .iter()
        .enumerate()
        .map(|(i, name)| ConceptShift {
            concept: name.clone(),
            old: old_props[i],
            new: new_props[i],
            delta: new_props[i] - old_props[i],
        })
        .collect();
    shifts.sort_by(|a, b| b.delta.partial_cmp(&a.delta).expect("finite deltas"));
    shifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec!["A".into(), "B".into(), "C".into()]
    }

    #[test]
    fn proportions_count_tags_and_normalize() {
        let tags =
            vec![vec!["A".to_string(), "B".to_string()], vec!["A".to_string(), "C".to_string()]];
        let p = concept_proportions(&tags, &names());
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!((p[1] - 0.25).abs() < 1e-6);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_tags_are_ignored() {
        let tags = vec![vec!["A".to_string(), "Zebra".to_string()]];
        let p = concept_proportions(&tags, &names());
        assert_eq!(p[0], 1.0);
    }

    #[test]
    fn empty_tags_give_zero_proportions() {
        let p = concept_proportions(&[], &names());
        assert!(p.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shifts_are_sorted_by_delta_descending() {
        let old = vec![0.5, 0.3, 0.2];
        let new = vec![0.2, 0.3, 0.5];
        let shifts = detect_shift(&old, &new, &names());
        assert_eq!(shifts[0].concept, "C");
        assert!((shifts[0].delta - 0.3).abs() < 1e-6);
        assert_eq!(shifts[2].concept, "A");
        assert!(shifts[2].delta < 0.0);
    }

    #[test]
    #[should_panic(expected = "one proportion per concept")]
    fn shift_detection_validates_lengths() {
        let _ = detect_shift(&[0.5], &[0.5, 0.5], &names());
    }
}
