//! Lifecycle use cases unlocked by concept-level reasoning (paper §5.2):
//! distribution-shift detection, concept-driven retraining selection, and
//! concept-guided dataset expansion. (The fourth use case, debugging, is
//! an *application* of [`crate::explain`] — see the `fig10_cc_debugging`
//! experiment.)

pub mod drift;
pub mod expansion;
pub mod retrain;

pub use drift::{concept_proportions, detect_shift, tag_batches, tag_datasets, ConceptShift};
pub use expansion::{kmeans, ks_statistic, ConceptStore};
pub use retrain::select_for_retraining;
