//! Concept-driven retraining selection (paper §5.2.2, Fig. 8).
//!
//! Instead of retraining on the entire new dataset, the operator retrains
//! on the *subset of traces* whose dominant concepts increased in the
//! deployment distribution — the under-represented conditions the old
//! controller never learned.

use crate::lifecycle::drift::ConceptShift;

/// Selects the indices of traces whose tags intersect the concepts that
/// increased by more than `min_delta` in the new distribution.
pub fn select_for_retraining(
    trace_tags: &[Vec<String>],
    shifts: &[ConceptShift],
    min_delta: f32,
) -> Vec<usize> {
    let increased: Vec<&str> =
        shifts.iter().filter(|s| s.delta > min_delta).map(|s| s.concept.as_str()).collect();
    trace_tags
        .iter()
        .enumerate()
        .filter(|(_, tags)| tags.iter().any(|t| increased.contains(&t.as_str())))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shift(concept: &str, delta: f32) -> ConceptShift {
        ConceptShift { concept: concept.into(), old: 0.2, new: 0.2 + delta, delta }
    }

    #[test]
    fn selects_traces_tagged_with_increased_concepts() {
        let tags = vec![
            vec!["Volatile".to_string()],
            vec!["Stable".to_string()],
            vec!["Volatile".to_string(), "Stable".to_string()],
        ];
        let shifts = vec![shift("Volatile", 0.15), shift("Stable", -0.15)];
        let selected = select_for_retraining(&tags, &shifts, 0.05);
        assert_eq!(selected, vec![0, 2]);
    }

    #[test]
    fn threshold_filters_small_shifts() {
        let tags = vec![vec!["Mild".to_string()]];
        let shifts = vec![shift("Mild", 0.02)];
        assert!(select_for_retraining(&tags, &shifts, 0.05).is_empty());
    }

    #[test]
    fn no_shifts_selects_nothing() {
        let tags = vec![vec!["A".to_string()]];
        assert!(select_for_retraining(&tags, &[], 0.0).is_empty());
    }
}
