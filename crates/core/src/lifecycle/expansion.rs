//! Concept-guided dataset expansion (paper §5.2.4, Fig. 11).
//!
//! A [`ConceptStore`] holds description embeddings of a large general
//! dataset. Given a few samples of a target workload, the store returns
//! the most cosine-similar stored samples, assembling an expanded dataset
//! whose *cluster distribution* (k-means over the same embedding space)
//! matches the target workload's — validated with the Kolmogorov–Smirnov
//! statistic over the cluster-index CDFs.

use agua_text::embedding::cosine_similarity;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// k-means over embedding vectors. Returns `(centroids, assignments)`.
///
/// Lloyd's algorithm with deterministic farthest-point-ish seeding: the
/// first centroid is the first sample, each subsequent centroid is the
/// sample farthest from all chosen so far.
pub fn kmeans(
    points: &[Vec<f32>],
    k: usize,
    iters: usize,
    seed: u64,
) -> (Vec<Vec<f32>>, Vec<usize>) {
    assert!(!points.is_empty(), "kmeans needs data");
    assert!(k >= 1 && k <= points.len(), "k out of range");
    let dim = points[0].len();
    assert!(points.iter().all(|p| p.len() == dim), "ragged points");
    let mut rng = StdRng::seed_from_u64(seed);

    // Farthest-point seeding from a random start.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..points.len())].clone());
    while centroids.len() < k {
        let (far_idx, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let nearest = centroids.iter().map(|c| sq_dist(p, c)).fold(f32::MAX, f32::min);
                (i, nearest)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("non-empty points");
        centroids.push(points[far_idx].clone());
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assign.
        for (i, p) in points.iter().enumerate() {
            assignments[i] = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| sq_dist(p, a.1).partial_cmp(&sq_dist(p, b.1)).expect("finite"))
                .map(|(c, _)| c)
                .expect("at least one centroid");
        }
        // Update.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &v) in sums[c].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f32;
                }
                centroids[c] = sums[c].clone();
            }
        }
    }
    (centroids, assignments)
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Assigns a point to its nearest centroid.
pub fn assign_cluster(point: &[f32], centroids: &[Vec<f32>]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|a, b| sq_dist(point, a.1).partial_cmp(&sq_dist(point, b.1)).expect("finite"))
        .map(|(c, _)| c)
        .expect("at least one centroid")
}

/// Two-sample Kolmogorov–Smirnov statistic over discrete cluster indices:
/// the supremum distance between the empirical CDFs of `a` and `b` over
/// clusters `0..k`.
pub fn ks_statistic(a: &[usize], b: &[usize], k: usize) -> f32 {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs non-empty samples");
    let cdf = |xs: &[usize]| -> Vec<f32> {
        let mut counts = vec![0usize; k];
        for &x in xs {
            assert!(x < k, "cluster index out of range");
            counts[x] += 1;
        }
        let mut acc = 0.0;
        counts
            .iter()
            .map(|&c| {
                acc += c as f32 / xs.len() as f32;
                acc
            })
            .collect()
    };
    let ca = cdf(a);
    let cb = cdf(b);
    // audit:allow(fp-reduce): max is associative and commutative — the
    // reduction order cannot change the result.
    ca.iter().zip(&cb).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// A concept-space store of description embeddings supporting
/// nearest-neighbour expansion queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptStore {
    embeddings: Vec<Vec<f32>>,
}

impl ConceptStore {
    /// Builds a store from description embeddings.
    pub fn new(embeddings: Vec<Vec<f32>>) -> Self {
        assert!(!embeddings.is_empty(), "store cannot be empty");
        Self { embeddings }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// True if the store is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// The stored embedding at `idx`.
    pub fn embedding(&self, idx: usize) -> &[f32] {
        &self.embeddings[idx]
    }

    /// Indices of the `top_n` stored samples most cosine-similar to
    /// `query`.
    pub fn query(&self, query: &[f32], top_n: usize) -> Vec<usize> {
        self.query_scored(query, top_n).into_iter().map(|(i, _)| i).collect()
    }

    /// Like [`ConceptStore::query`] but returning `(index, similarity)`
    /// pairs, best first.
    pub fn query_scored(&self, query: &[f32], top_n: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = self
            .embeddings
            .iter()
            .enumerate()
            .map(|(i, e)| (i, cosine_similarity(query, e)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
        scored.truncate(top_n);
        scored
    }

    /// Expands a set of query samples into a larger dataset: the union of
    /// each query's `per_query` nearest stored samples (deduplicated,
    /// order of first retrieval preserved).
    pub fn expand(&self, queries: &[Vec<f32>], per_query: usize) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for q in queries {
            for idx in self.query(q, per_query) {
                if !out.contains(&idx) {
                    out.push(idx);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2-D.
    fn blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = i as f32 * 0.01;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 0.0]);
            pts.push(vec![0.0 + j, 10.0]);
        }
        pts
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let pts = blobs();
        let (centroids, assignments) = kmeans(&pts, 3, 20, 1);
        assert_eq!(centroids.len(), 3);
        // All points of one blob share an assignment.
        let first_blob: Vec<usize> = (0..60).step_by(3).map(|i| assignments[i]).collect();
        assert!(first_blob.iter().all(|&c| c == first_blob[0]));
        // Different blobs get different clusters.
        assert_ne!(assignments[0], assignments[1]);
        assert_ne!(assignments[0], assignments[2]);
    }

    #[test]
    fn kmeans_is_deterministic_per_seed() {
        let pts = blobs();
        let (_, a) = kmeans(&pts, 3, 10, 5);
        let (_, b) = kmeans(&pts, 3, 10, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn ks_statistic_is_zero_for_identical_distributions() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(ks_statistic(&a, &a, 3), 0.0);
    }

    #[test]
    fn ks_statistic_is_one_for_disjoint_distributions() {
        let a = vec![0; 10];
        let b = vec![2; 10];
        assert!((ks_statistic(&a, &b, 3) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ks_statistic_detects_partial_shift() {
        let a = vec![0, 0, 0, 1, 1, 2];
        let b = vec![0, 1, 1, 2, 2, 2];
        let ks = ks_statistic(&a, &b, 3);
        assert!(ks > 0.2 && ks < 0.6, "ks {ks}");
    }

    #[test]
    fn store_query_returns_nearest_neighbours() {
        let store = ConceptStore::new(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1]]);
        let hits = store.query(&[1.0, 0.05], 2);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&0) && hits.contains(&2), "{hits:?}");
    }

    #[test]
    fn expand_deduplicates_across_queries() {
        let store = ConceptStore::new(vec![vec![1.0, 0.0], vec![0.99, 0.01]]);
        let expanded = store.expand(&[vec![1.0, 0.0], vec![0.98, 0.0]], 2);
        assert_eq!(expanded.len(), 2, "no duplicates: {expanded:?}");
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn kmeans_rejects_k_larger_than_data() {
        let _ = kmeans(&[vec![0.0]], 2, 5, 1);
    }
}
