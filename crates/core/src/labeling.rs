//! Training-data preparation (paper §3.3, Fig. 2 stages ②③).
//!
//! Each controller input is converted to a structured text description,
//! the description and every base concept are embedded, cosine
//! similarities are computed (Eq. 2), and the similarity scores are
//! quantized with ψ_k into `k` classes — low / medium / high by default.
//!
//! One calibration detail: the paper's OpenAI-scale embeddings put
//! description-to-concept cosines in [0, 1] with the half-open
//! quantization bins [0, .2), [.2, .6), [.6, 1]. Our lexical embedder
//! produces the same
//! *ordering* but a compressed scale (a long description shares only part
//! of its mass with any one concept), so similarities are normalized per
//! input by the maximum concept similarity before the paper's bins are
//! applied. Rank information — which is all ψ_k consumes — is preserved.

use crate::concepts::ConceptSet;
use agua_text::describer::{DescribedSection, Describer};
use agua_text::embedding::{cosine_similarity, Embedder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How raw cosine scores are rescaled before quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityNormalization {
    /// Use raw cosine values (appropriate for embedders whose scale
    /// matches the paper's bins).
    None,
    /// Divide each input's concept-similarity vector by its maximum.
    PerInputMax,
}

/// The quantization function ψ_k (paper Eq. 2).
///
/// Bins are half-open: a score equal to a boundary lands in the upper
/// class.
///
/// ```
/// use agua::labeling::Quantizer;
///
/// let q = Quantizer::paper(); // bins [0,.2), [.2,.6), [.6,1]
/// assert_eq!(q.quantize(0.1), 0); // low
/// assert_eq!(q.quantize(0.2), 1); // boundary → upper class
/// assert_eq!(q.quantize(0.4), 1); // medium
/// assert_eq!(q.quantize(0.6), 2); // boundary → upper class
/// assert_eq!(q.quantize(0.9), 2); // high
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Ascending inner bin boundaries; `k = boundaries.len() + 1`.
    pub boundaries: Vec<f32>,
}

impl Quantizer {
    /// The paper's ψ_3: bins [0,.2), [.2,.6), [.6,1] for low/medium/high.
    //= spec: specs/core-equations.toml#psi-quantizer
    //# bucket similarity scores into the half-open bins [0, 0.2),
    //# [0.2, 0.6), [0.6, 1] for low/medium/high concept presence
    pub fn paper() -> Self {
        Self { boundaries: vec![0.2, 0.6] }
    }

    /// ψ_3 re-calibrated for the hashed lexical embedder: after per-input
    /// max normalization its similarity mass concentrates near the top, so
    /// boundaries of 0.55/0.8 recover the balanced low/medium/high split
    /// the paper's bins produce on OpenAI-scale embeddings.
    pub fn calibrated() -> Self {
        Self { boundaries: vec![0.55, 0.8] }
    }

    /// A boolean present/absent quantizer (k = 2), used by the
    /// quantization ablation.
    pub fn boolean(threshold: f32) -> Self {
        Self { boundaries: vec![threshold] }
    }

    /// Builds boundaries from explicit values.
    ///
    /// # Panics
    /// Panics if boundaries are empty or not strictly ascending.
    pub fn new(boundaries: Vec<f32>) -> Self {
        assert!(!boundaries.is_empty(), "quantizer needs at least one boundary");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly ascending"
        );
        Self { boundaries }
    }

    /// Number of classes `k`.
    pub fn classes(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// Quantizes a similarity score into a class index in `0..k`.
    /// Boundaries belong to the upper class (half-open bins).
    //= spec: specs/core-equations.toml#psi-quantizer
    //# a score exactly on a boundary belongs to the upper class
    pub fn quantize(&self, score: f32) -> usize {
        self.boundaries.iter().filter(|&&b| score >= b).count()
    }

    /// Class names for the default 3-level quantizer.
    pub fn class_name(&self, class: usize) -> &'static str {
        match (self.classes(), class) {
            (3, 0) => "low",
            (3, 1) => "medium",
            (3, 2) => "high",
            (2, 0) => "absent",
            (2, 1) => "present",
            _ => "class",
        }
    }
}

/// The end-to-end labelling pipeline: describe → embed → cosine →
/// quantize.
#[derive(Debug, Clone)]
pub struct ConceptLabeler {
    describer: Describer,
    embedder: Embedder,
    quantizer: Quantizer,
    normalization: SimilarityNormalization,
    concept_names: Vec<String>,
    concept_embeddings: Vec<Vec<f32>>,
}

impl ConceptLabeler {
    /// Builds a labeler for a concept set.
    pub fn new(
        concepts: &ConceptSet,
        describer: Describer,
        embedder: Embedder,
        quantizer: Quantizer,
    ) -> Self {
        let concept_embeddings = concepts.embed(&embedder);
        Self {
            describer,
            embedder,
            quantizer,
            normalization: SimilarityNormalization::PerInputMax,
            concept_names: concepts.names(),
            concept_embeddings,
        }
    }

    /// Overrides the similarity normalization mode.
    pub fn with_normalization(mut self, normalization: SimilarityNormalization) -> Self {
        self.normalization = normalization;
        self
    }

    /// Number of concepts.
    pub fn concepts(&self) -> usize {
        self.concept_names.len()
    }

    /// The quantizer in use.
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Concept names in order.
    pub fn concept_names(&self) -> &[String] {
        &self.concept_names
    }

    /// Generates the structured text description of an input (stage ②).
    pub fn describe(&self, sections: &[DescribedSection], seed: u64) -> String {
        self.describer.describe_seeded(sections, seed)
    }

    /// Raw concept similarities of a description (stage ③, before ψ_k).
    pub fn similarities(&self, description: &str) -> Vec<f32> {
        let emb = self.embedder.embed(description);
        let mut sims: Vec<f32> =
            self.concept_embeddings.iter().map(|c| cosine_similarity(&emb, c)).collect();
        if self.normalization == SimilarityNormalization::PerInputMax {
            // audit:allow(fp-reduce): max is associative and commutative —
            // the reduction order cannot change the result.
            let max = sims.iter().cloned().fold(0.0f32, f32::max);
            if max > 0.0 {
                for s in &mut sims {
                    *s /= max;
                }
            }
        }
        sims
    }

    /// Quantized similarity classes `S_C` for a description.
    pub fn label_description(&self, description: &str) -> Vec<usize> {
        self.similarities(description).into_iter().map(|s| self.quantizer.quantize(s)).collect()
    }

    /// Full pipeline for one input: describe, embed, quantize.
    pub fn label(&self, sections: &[DescribedSection], seed: u64) -> Vec<usize> {
        let description = self.describe(sections, seed);
        self.label_description(&description)
    }

    /// Labels a batch of inputs, deriving one description seed per input
    /// from `seed`.
    pub fn label_batch(&self, inputs: &[Vec<DescribedSection>], seed: u64) -> Vec<Vec<usize>> {
        let seeds = Self::derive_seeds(inputs.len(), seed);
        inputs.iter().zip(&seeds).map(|(sections, &s)| self.label(sections, s)).collect()
    }

    /// [`ConceptLabeler::label_batch`] across `threads` scoped worker
    /// threads (via the deterministic `agua-nn` parallel backend).
    /// Produces byte-identical labels to the sequential version — each
    /// input keeps its derived seed and its slot in the output — so it
    /// is safe for the multi-thousand-sample rollouts of the experiments.
    pub fn label_batch_parallel(
        &self,
        inputs: &[Vec<DescribedSection>],
        seed: u64,
        threads: usize,
    ) -> Vec<Vec<usize>> {
        self.label_batch_observed(inputs, seed, threads, &agua_obs::Noop)
    }

    /// [`ConceptLabeler::label_batch_parallel`] reporting to `obs`: the
    /// batch runs inside a [`Stage::Labeling`](agua_obs::Stage) span and
    /// finishes with a [`LabelingStageFinished`](agua_obs::LabelingStageFinished)
    /// carrying the batch dimensions. Labels are unaffected by `obs`.
    pub fn label_batch_observed(
        &self,
        inputs: &[Vec<DescribedSection>],
        seed: u64,
        threads: usize,
        obs: &dyn agua_obs::Subscriber,
    ) -> Vec<Vec<usize>> {
        assert!(threads >= 1, "need at least one worker thread");
        let span = agua_obs::span_start(obs, agua_obs::Stage::Labeling);
        let labels = if inputs.is_empty() {
            Vec::new()
        } else {
            let seeds = Self::derive_seeds(inputs.len(), seed);
            agua_nn::parallel::with_threads(threads, || {
                agua_nn::parallel::par_map_range(inputs.len(), |i| self.label(&inputs[i], seeds[i]))
            })
        };
        agua_obs::emit(
            obs,
            agua_obs::LabelingStageFinished {
                inputs: inputs.len(),
                concepts: self.concepts(),
                classes: self.quantizer.classes(),
            },
        );
        agua_obs::span_end(obs, span);
        labels
    }

    /// Derives the deterministic per-input description seeds shared by
    /// the sequential and parallel batch paths. Draws cover the full
    /// `u64` range (`random_range(0..u64::MAX)` would exclude the top
    /// value).
    fn derive_seeds(count: usize, seed: u64) -> Vec<u64> {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| rng.random::<u64>()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::cc_concepts;
    use agua_text::describer::DescriberConfig;
    use agua_text::stats::SignalSeries;

    fn labeler() -> ConceptLabeler {
        ConceptLabeler::new(
            &cc_concepts(),
            Describer::new(DescriberConfig::noiseless()),
            Embedder::new(512),
            Quantizer::paper(),
        )
    }

    fn latency_spike_sections() -> Vec<DescribedSection> {
        vec![
            DescribedSection::new(
                "Latency behavior",
                vec![SignalSeries::new(
                    "Network Latency",
                    "ms",
                    vec![40.0, 41.0, 40.0, 42.0, 55.0, 80.0, 120.0, 170.0, 230.0, 300.0],
                    400.0,
                )],
            ),
            DescribedSection::new(
                "Loss behavior",
                vec![SignalSeries::new("Packet Loss Rate", "fraction", vec![0.0; 10], 1.0)],
            ),
        ]
    }

    #[test]
    fn paper_quantizer_has_three_classes_with_documented_bins() {
        let q = Quantizer::paper();
        assert_eq!(q.classes(), 3);
        assert_eq!(q.quantize(0.1), 0);
        assert_eq!(q.quantize(0.4), 1);
        assert_eq!(q.quantize(0.61), 2);
        assert_eq!(q.quantize(1.0), 2);
        assert_eq!(q.class_name(0), "low");
        assert_eq!(q.class_name(2), "high");
    }

    #[test]
    fn quantizer_bins_are_half_open_at_the_boundaries() {
        // Regression: ψ_3's bins are [0,.2) / [.2,.6) / [.6,1], so a
        // score exactly on a boundary belongs to the upper class.
        let q = Quantizer::paper();
        assert_eq!(q.quantize(0.2), 1);
        assert_eq!(q.quantize(0.6), 2);
        assert_eq!(q.quantize(0.19999), 0);
        assert_eq!(q.quantize(0.59999), 1);
        let b = Quantizer::boolean(0.5);
        assert_eq!(b.quantize(0.5), 1);
    }

    #[test]
    fn derived_seeds_are_deterministic_and_well_spread() {
        let a = ConceptLabeler::derive_seeds(64, 7);
        let b = ConceptLabeler::derive_seeds(64, 7);
        assert_eq!(a, b);
        let c = ConceptLabeler::derive_seeds(64, 8);
        assert_ne!(a, c);
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), a.len());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn quantizer_rejects_unsorted_boundaries() {
        let _ = Quantizer::new(vec![0.6, 0.2]);
    }

    #[test]
    fn pure_latency_ramp_ranks_rapidly_increasing_latency_top() {
        let l = labeler();
        let ramp: Vec<f32> = (0..10).map(|i| 40.0 + 30.0 * i as f32).collect();
        let sections = vec![DescribedSection::new(
            "Latency behavior",
            vec![SignalSeries::new("Network Latency", "ms", ramp, 400.0)],
        )];
        let description = l.describe(&sections, 7);
        let sims = l.similarities(&description);
        let names = l.concept_names();
        let top = names
            [sims.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0]
            .clone();
        assert_eq!(top, "Rapidly Increasing Latency", "sims: {sims:?}");
    }

    #[test]
    fn late_latency_spike_with_flat_loss_ranks_spike_in_top_three() {
        // The flat loss series legitimately evokes "Stable Network
        // Conditions"; the spike concept must still surface near the top.
        let l = labeler();
        let description = l.describe(&latency_spike_sections(), 7);
        let sims = l.similarities(&description);
        let names = l.concept_names();
        let mut order: Vec<usize> = (0..sims.len()).collect();
        order.sort_by(|&a, &b| sims[b].partial_cmp(&sims[a]).unwrap());
        let top3: Vec<&str> = order[..3].iter().map(|&i| names[i].as_str()).collect();
        assert!(top3.contains(&"Rapidly Increasing Latency"), "top3 {top3:?}, sims {sims:?}");
        assert!(top3.contains(&"Stable Network Conditions"), "top3 {top3:?}");
    }

    #[test]
    fn labels_spread_across_classes() {
        let l = labeler();
        let labels = l.label(&latency_spike_sections(), 7);
        assert_eq!(labels.len(), 8);
        assert!(labels.contains(&2), "some concept must be high");
        assert!(labels.iter().any(|&c| c < 2), "not every concept can be high");
    }

    #[test]
    fn per_input_max_normalization_tops_at_one() {
        let l = labeler();
        let description = l.describe(&latency_spike_sections(), 3);
        let sims = l.similarities(&description);
        let max = sims.iter().cloned().fold(0.0f32, f32::max);
        assert!((max - 1.0).abs() < 1e-5);
    }

    #[test]
    fn parallel_labelling_matches_sequential() {
        let l = labeler();
        let inputs: Vec<_> = (0..7).map(|_| latency_spike_sections()).collect();
        let sequential = l.label_batch(&inputs, 5);
        for threads in [1, 2, 3, 8] {
            assert_eq!(l.label_batch_parallel(&inputs, 5, threads), sequential);
        }
        assert!(l.label_batch_parallel(&[], 5, 2).is_empty());
    }

    #[test]
    fn label_batch_is_deterministic_per_seed() {
        let l = labeler();
        let inputs = vec![latency_spike_sections(), latency_spike_sections()];
        let a = l.label_batch(&inputs, 11);
        let b = l.label_batch(&inputs, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn noiseless_descriptions_yield_identical_labels_across_seeds() {
        let l = labeler();
        assert_eq!(l.label(&latency_spike_sections(), 1), l.label(&latency_spike_sections(), 2));
    }
}
