//! Agua's surrogate concept-based model (paper §3.4, Eq. 3–6, 11).
//!
//! The surrogate is trained **sequentially**: first the concept mapping
//! function δ learns to predict quantized concept-similarity classes from
//! controller embeddings (multi-label cross-entropy, Eq. 4); then the
//! output mapping function Ω learns a linear map from δ's concept-class
//! probabilities to the controller's output under ElasticNet
//! regularization (Eq. 5–6). Gradients never reach the controller.

use crate::concepts::ConceptSet;
use agua_nn::{
    grouped_softmax_cross_entropy_into, parallel, softmax_cross_entropy_into, softmax_rows,
    BackwardScratch, ElasticNet, Layer, LayerKind, LayerNorm, Linear, Matrix, Mlp, MlpWorkspace,
    Optimizer, ReLU, Sgd,
};
use agua_obs::{emit, span_end, span_start, EpochCompleted, Noop, Stage, Subscriber};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters; [`TrainParams::paper`] reproduces §4
/// (the one addition is momentum on the output-mapping SGD, which §4
/// leaves unspecified; without it Ω under-converges at 500 epochs).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainParams {
    /// Hidden width of the concept mapping MLP.
    pub cm_hidden: usize,
    /// Concept-mapping epochs (paper: 200).
    pub cm_epochs: usize,
    /// Concept-mapping batch size (paper: 100).
    pub cm_batch: usize,
    /// Concept-mapping SGD learning rate (paper: 0.005).
    pub cm_lr: f32,
    /// Concept-mapping SGD momentum (paper: 0.25).
    pub cm_momentum: f32,
    /// Output-mapping epochs (paper: 500).
    pub om_epochs: usize,
    /// Output-mapping batch size (paper: 200).
    pub om_batch: usize,
    /// Output-mapping SGD learning rate (paper: 0.075).
    pub om_lr: f32,
    /// Output-mapping SGD momentum.
    pub om_momentum: f32,
    /// ElasticNet mixing α (paper: 0.95).
    pub elastic_alpha: f32,
    /// ElasticNet coefficient λ (paper: 1e-5).
    pub elastic_coeff: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl TrainParams {
    /// The paper's §4 training parameters.
    pub fn paper() -> Self {
        Self {
            cm_hidden: 64,
            cm_epochs: 200,
            cm_batch: 100,
            cm_lr: 0.005,
            cm_momentum: 0.25,
            om_epochs: 500,
            om_batch: 200,
            om_lr: 0.075,
            om_momentum: 0.95,
            elastic_alpha: 0.95,
            elastic_coeff: 1e-5,
            seed: 7,
        }
    }

    /// A reduced-epoch configuration for unit tests.
    pub fn fast() -> Self {
        Self { cm_epochs: 60, om_epochs: 150, ..Self::paper() }
    }

    /// The configuration the experiment harness uses: the paper's §4
    /// constants with a longer, faster output-mapping schedule (the
    /// published 500-epoch/0.075-lr schedule leaves Ω visibly
    /// under-converged under this workspace's SGD implementation).
    pub fn tuned() -> Self {
        Self { cm_hidden: 128, om_lr: 0.15, om_epochs: 1200, ..Self::paper() }
    }
}

/// The labelled data the surrogate trains on: controller embeddings,
/// quantized concept classes, and controller outputs.
#[derive(Debug, Clone)]
pub struct SurrogateDataset {
    /// Controller embeddings `h(x)`, one row per input.
    pub embeddings: Matrix,
    /// Quantized concept-similarity classes, `concept_labels[i][c] ∈ 0..k`.
    pub concept_labels: Vec<Vec<usize>>,
    /// Controller outputs (argmax class per input).
    pub outputs: Vec<usize>,
}

impl SurrogateDataset {
    /// Validates internal consistency.
    pub fn validate(&self, concepts: usize, k: usize, n_outputs: usize) {
        let n = self.embeddings.rows();
        assert_eq!(self.concept_labels.len(), n, "one concept-label row per embedding");
        assert_eq!(self.outputs.len(), n, "one output per embedding");
        for row in &self.concept_labels {
            assert_eq!(row.len(), concepts, "one class per concept");
            assert!(row.iter().all(|&c| c < k), "concept class out of range");
        }
        assert!(self.outputs.iter().all(|&y| y < n_outputs), "output out of range");
    }
}

/// The concept mapping function δ (Eq. 3): `Linear → ReLU → LayerNorm →
/// Linear` from the controller's embedding space to `C·k` concept-class
/// logits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConceptMapping {
    mlp: Mlp,
    /// Number of concepts `C`.
    pub concepts: usize,
    /// Similarity classes per concept `k`.
    pub k: usize,
}

impl ConceptMapping {
    /// Creates an untrained δ for `emb_dim`-dimensional embeddings.
    //= spec: specs/core-equations.toml#delta-architecture
    //# a two-layer MLP of the shape Linear, ReLU, LayerNorm, Linear,
    //# taking an embedding of the controller input and producing C*k
    //# concept-class logits
    pub fn new(rng: &mut StdRng, emb_dim: usize, hidden: usize, concepts: usize, k: usize) -> Self {
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(rng, emb_dim, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(hidden)))
            .push(LayerKind::Linear(Linear::new(rng, hidden, concepts * k)));
        Self { mlp, concepts, k }
    }

    /// Creates a δ *without* the LayerNorm between the hidden layers —
    /// used by the LayerNorm ablation to test the paper's §4 claim that
    /// the re-normalization is what lets the final layer read the
    /// controller's embedding distribution.
    pub fn new_without_layernorm(
        rng: &mut StdRng,
        emb_dim: usize,
        hidden: usize,
        concepts: usize,
        k: usize,
    ) -> Self {
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(rng, emb_dim, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::Linear(Linear::new(rng, hidden, concepts * k)));
        Self { mlp, concepts, k }
    }

    /// Trains δ with mini-batch SGD + momentum on the grouped
    /// cross-entropy of Eq. 4; returns the per-epoch loss curve.
    pub fn fit(
        &mut self,
        embeddings: &Matrix,
        labels: &[Vec<usize>],
        params: &TrainParams,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        self.fit_observed(embeddings, labels, params, rng, &Noop)
    }

    /// [`ConceptMapping::fit`] reporting progress to `obs`: the whole fit
    /// runs inside a [`Stage::DeltaFit`] span and every epoch emits an
    /// [`EpochCompleted`]. Events are observations only — the numerics
    /// are identical to the unobserved path.
    pub fn fit_observed(
        &mut self,
        embeddings: &Matrix,
        labels: &[Vec<usize>],
        params: &TrainParams,
        rng: &mut StdRng,
        obs: &dyn Subscriber,
    ) -> Vec<f32> {
        assert_eq!(embeddings.rows(), labels.len(), "one label row per embedding");
        let n = embeddings.rows();
        let span = span_start(obs, Stage::DeltaFit);
        let mut opt = Sgd::new(params.cm_lr, params.cm_momentum);
        let mut order: Vec<usize> = (0..n).collect();
        let mut curve = Vec::with_capacity(params.cm_epochs);
        // Persistent step buffers: after the first batch every step is
        // allocation-free, and the `_into` paths are bitwise-identical
        // to the allocating ones, so trained weights don't change.
        let mut ws = MlpWorkspace::default();
        let mut x = Matrix::default();
        let mut grad = Matrix::default();
        let mut y_buf: Vec<Vec<usize>> = Vec::new();
        for epoch in 0..params.cm_epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(params.cm_batch) {
                embeddings.select_rows_into(chunk, &mut x);
                y_buf.resize(chunk.len(), Vec::new());
                for (dst, &i) in y_buf.iter_mut().zip(chunk) {
                    dst.clone_from(&labels[i]);
                }
                self.mlp.zero_grad();
                let logits = self.mlp.forward_ws(&x, &mut ws);
                let loss = grouped_softmax_cross_entropy_into(
                    logits,
                    &y_buf,
                    self.concepts,
                    self.k,
                    &mut grad,
                );
                self.mlp.backward_ws(&grad, &mut ws);
                opt.step(&mut self.mlp.params_mut());
                epoch_loss += loss;
                batches += 1;
            }
            let loss = epoch_loss / batches.max(1) as f32;
            curve.push(loss);
            emit(obs, EpochCompleted { stage: Stage::DeltaFit, epoch, loss });
        }
        span_end(obs, span);
        curve
    }

    /// The underlying network (read-only; for artifact codecs).
    pub fn mlp(&self) -> &Mlp {
        &self.mlp
    }

    /// Reassembles a δ from its parts — the inverse of the artifact
    /// codec in `agua-app`.
    pub fn from_parts(mlp: Mlp, concepts: usize, k: usize) -> Self {
        Self { mlp, concepts, k }
    }

    /// Concept-class probabilities: per-concept softmax over the `k`
    /// similarity classes, flattened to `n × (C·k)`.
    ///
    /// The δ forward runs fused (`Mlp::forward_into`) and the grouped
    /// softmax overwrites the logits in place — no intermediate matrix.
    pub fn predict_probs(&self, embeddings: &Matrix) -> Matrix {
        let mut probs = self.mlp.infer(embeddings);
        debug_assert_eq!(probs.cols(), self.concepts * self.k);
        grouped_softmax_rows_inplace(&mut probs, self.k);
        probs
    }

    /// Fraction of (input, concept) pairs whose predicted class matches
    /// the label.
    pub fn label_accuracy(&self, embeddings: &Matrix, labels: &[Vec<usize>]) -> f32 {
        let probs = self.predict_probs(embeddings);
        let mut hits = 0usize;
        let mut total = 0usize;
        for (r, row) in labels.iter().enumerate() {
            for (g, &truth) in row.iter().enumerate() {
                let base = g * self.k;
                let mut best = 0;
                for j in 1..self.k {
                    if probs.get(r, base + j) > probs.get(r, base + best) {
                        best = j;
                    }
                }
                hits += usize::from(best == truth);
                total += 1;
            }
        }
        hits as f32 / total.max(1) as f32
    }
}

/// Per-concept softmax over each `k`-wide group of every row, in place.
///
/// Shared by the `f32` and int8-quantized δ paths. Rows are independent
/// and each group's max/exp/sum/divide runs in fixed `j`-ascending
/// order entirely within its row, so the parallel row loop (gated with
/// the exp-heavy cost hint) is byte-identical to the sequential one.
pub(crate) fn grouped_softmax_rows_inplace(m: &mut Matrix, k: usize) {
    assert!(k > 0 && m.cols().is_multiple_of(k), "row width must be a multiple of k");
    parallel::par_for_each_rows_cost(m, parallel::EXP_ELEM_FLOPS, |_, row| {
        for group in row.chunks_exact_mut(k) {
            let max = group.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in group.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in group.iter_mut() {
                *v /= sum;
            }
        }
    });
}

/// The output mapping function Ω (Eq. 5): a single linear layer from
/// concept-class probabilities to controller outputs, trained with
/// ElasticNet regularization (Eq. 6).
//= spec: specs/core-equations.toml#omega-architecture
//# a single linear layer from the C*k concept-class probabilities to
//# the controller outputs, trained with ElasticNet regularization
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputMapping {
    linear: Linear,
    /// Output dimensionality `n`.
    pub n_outputs: usize,
}

impl OutputMapping {
    /// Creates an untrained Ω.
    pub fn new(rng: &mut StdRng, concept_dims: usize, n_outputs: usize) -> Self {
        Self { linear: Linear::new_xavier(rng, concept_dims, n_outputs), n_outputs }
    }

    /// Trains Ω on fixed concept probabilities (δ is frozen — the paper's
    /// sequential training); returns the per-epoch loss curve.
    pub fn fit(
        &mut self,
        concept_probs: &Matrix,
        outputs: &[usize],
        params: &TrainParams,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        self.fit_observed(concept_probs, outputs, params, rng, &Noop)
    }

    /// [`OutputMapping::fit`] reporting progress to `obs`: the whole fit
    /// runs inside a [`Stage::OmegaFit`] span and every epoch emits an
    /// [`EpochCompleted`]. Events are observations only — the numerics
    /// are identical to the unobserved path.
    pub fn fit_observed(
        &mut self,
        concept_probs: &Matrix,
        outputs: &[usize],
        params: &TrainParams,
        rng: &mut StdRng,
        obs: &dyn Subscriber,
    ) -> Vec<f32> {
        assert_eq!(concept_probs.rows(), outputs.len(), "one output per row");
        let n = concept_probs.rows();
        let span = span_start(obs, Stage::OmegaFit);
        let mut opt = Sgd::new(params.om_lr, params.om_momentum);
        let elastic = ElasticNet::new(params.elastic_alpha, params.elastic_coeff);
        let mut order: Vec<usize> = (0..n).collect();
        let mut curve = Vec::with_capacity(params.om_epochs);
        // Persistent step buffers — see `ConceptMapping::fit_observed`.
        let mut x = Matrix::default();
        let mut y: Vec<usize> = Vec::new();
        let mut logits = Matrix::default();
        let mut grad = Matrix::default();
        let mut dx = Matrix::default();
        let mut scratch = BackwardScratch::default();
        for epoch in 0..params.om_epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(params.om_batch) {
                concept_probs.select_rows_into(chunk, &mut x);
                y.clear();
                y.extend(chunk.iter().map(|&i| outputs[i]));
                self.linear.zero_grad();
                self.linear.forward_into(&x, &mut logits);
                let loss = softmax_cross_entropy_into(&logits, &y, &mut grad);
                self.linear.backward_into(&grad, &mut dx, &mut scratch);
                elastic.accumulate_grad(&mut self.linear.params_mut());
                opt.step(&mut self.linear.params_mut());
                epoch_loss += loss;
                batches += 1;
            }
            let loss = epoch_loss / batches.max(1) as f32;
            curve.push(loss);
            emit(obs, EpochCompleted { stage: Stage::OmegaFit, epoch, loss });
        }
        span_end(obs, span);
        curve
    }

    /// Output logits for concept probabilities.
    pub fn predict_logits(&self, concept_probs: &Matrix) -> Matrix {
        self.linear.infer(concept_probs)
    }

    /// The weight matrix `W` (`C·k × n`), the self-interpretable point of
    /// explanation.
    pub fn weights(&self) -> &Matrix {
        &self.linear.weight.value
    }

    /// The bias vector `b` (1 × n).
    pub fn bias(&self) -> &Matrix {
        &self.linear.bias.value
    }

    /// The underlying linear layer (read-only; for artifact codecs).
    pub fn linear(&self) -> &Linear {
        &self.linear
    }

    /// Reassembles an Ω from its parts — the inverse of the artifact
    /// codec in `agua-app`.
    pub fn from_parts(linear: Linear, n_outputs: usize) -> Self {
        Self { linear, n_outputs }
    }
}

/// The full surrogate: δ composed with Ω, plus concept metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AguaModel {
    /// The concept mapping function δ.
    pub concept_mapping: ConceptMapping,
    /// The output mapping function Ω.
    pub output_mapping: OutputMapping,
    /// Concept names, in δ's group order.
    pub concept_names: Vec<String>,
}

impl AguaModel {
    /// Trains the surrogate on a dataset (sequentially: δ then Ω).
    pub fn fit(
        concepts: &ConceptSet,
        k: usize,
        n_outputs: usize,
        dataset: &SurrogateDataset,
        params: &TrainParams,
    ) -> Self {
        Self::fit_with_options(concepts, k, n_outputs, dataset, params, true, &Noop)
    }

    /// [`AguaModel::fit`] reporting training progress (δ/Ω spans,
    /// per-epoch losses) to `obs`.
    pub fn fit_observed(
        concepts: &ConceptSet,
        k: usize,
        n_outputs: usize,
        dataset: &SurrogateDataset,
        params: &TrainParams,
        obs: &dyn Subscriber,
    ) -> Self {
        Self::fit_with_options(concepts, k, n_outputs, dataset, params, true, obs)
    }

    /// [`AguaModel::fit`] with an explicit LayerNorm toggle (ablation)
    /// and an observer for training progress. Subscribers observe only:
    /// the trained weights are byte-identical for any `obs`.
    pub fn fit_with_options(
        concepts: &ConceptSet,
        k: usize,
        n_outputs: usize,
        dataset: &SurrogateDataset,
        params: &TrainParams,
        layernorm: bool,
        obs: &dyn Subscriber,
    ) -> Self {
        dataset.validate(concepts.len(), k, n_outputs);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let emb_dim = dataset.embeddings.cols();

        let mut cm = if layernorm {
            ConceptMapping::new(&mut rng, emb_dim, params.cm_hidden, concepts.len(), k)
        } else {
            ConceptMapping::new_without_layernorm(
                &mut rng,
                emb_dim,
                params.cm_hidden,
                concepts.len(),
                k,
            )
        };
        cm.fit_observed(&dataset.embeddings, &dataset.concept_labels, params, &mut rng, obs);

        let probs = cm.predict_probs(&dataset.embeddings);
        let mut om = OutputMapping::new(&mut rng, concepts.len() * k, n_outputs);
        om.fit_observed(&probs, &dataset.outputs, params, &mut rng, obs);

        Self { concept_mapping: cm, output_mapping: om, concept_names: concepts.names() }
    }

    /// Number of concepts.
    pub fn concepts(&self) -> usize {
        self.concept_mapping.concepts
    }

    /// Similarity classes per concept.
    pub fn k(&self) -> usize {
        self.concept_mapping.k
    }

    /// Number of output classes.
    pub fn n_outputs(&self) -> usize {
        self.output_mapping.n_outputs
    }

    /// δ's concept-class probabilities for a batch of embeddings.
    pub fn concept_probs(&self, embeddings: &Matrix) -> Matrix {
        self.concept_mapping.predict_probs(embeddings)
    }

    /// Surrogate output logits for a batch of embeddings.
    pub fn predict_logits(&self, embeddings: &Matrix) -> Matrix {
        self.output_mapping.predict_logits(&self.concept_probs(embeddings))
    }

    /// Concept-class probabilities **and** output probabilities from a
    /// single δ forward pass.
    ///
    /// The explanation paths need both (Eq. 8 reads `δ(h(x))`, Eq. 9–10
    /// scale by the class probability); calling [`AguaModel::concept_probs`]
    /// and [`AguaModel::predict_probs`] separately runs the δ network —
    /// the expensive half of the surrogate — twice on the same batch.
    pub fn concept_and_output_probs(&self, embeddings: &Matrix) -> (Matrix, Matrix) {
        let concept_probs = self.concept_probs(embeddings);
        let out_probs = softmax_rows(&self.output_mapping.predict_logits(&concept_probs));
        (concept_probs, out_probs)
    }

    /// Surrogate output probabilities.
    pub fn predict_probs(&self, embeddings: &Matrix) -> Matrix {
        softmax_rows(&self.predict_logits(embeddings))
    }

    /// Surrogate argmax predictions.
    pub fn predict(&self, embeddings: &Matrix) -> Vec<usize> {
        let logits = self.predict_logits(embeddings);
        (0..embeddings.rows()).map(|r| logits.argmax_row(r)).collect()
    }

    /// Numeric prediction for **regression controllers** (paper §3.4):
    /// the controller's continuous output is discretized into `bins`
    /// during training (one output class per bin); at explanation time
    /// the dot product `Ω(δ(h(x))) · bins` recovers the numeric value.
    ///
    /// # Panics
    /// Panics if `bins.len() != n_outputs`.
    pub fn predict_numeric(&self, embeddings: &Matrix, bins: &[f32]) -> Vec<f32> {
        assert_eq!(bins.len(), self.n_outputs(), "one bin centre per output class required");
        let probs = self.predict_probs(embeddings);
        (0..embeddings.rows())
            .map(|r| probs.row(r).iter().zip(bins).map(|(&p, &b)| p * b).sum())
            .collect()
    }

    /// Mean absolute error of [`AguaModel::predict_numeric`] against
    /// numeric controller outputs — the regression analogue of fidelity.
    pub fn numeric_mae(&self, embeddings: &Matrix, targets: &[f32], bins: &[f32]) -> f32 {
        assert_eq!(embeddings.rows(), targets.len());
        let preds = self.predict_numeric(embeddings, bins);
        // audit:allow(fp-reduce): sequential sum in fixed row order on one
        // thread — never dispatched to the parallel backend.
        preds.iter().zip(targets).map(|(p, t)| (p - t).abs()).sum::<f32>()
            / targets.len().max(1) as f32
    }

    /// The fidelity metric (Eq. 11): agreement with controller outputs.
    //= spec: specs/core-equations.toml#fidelity-metric
    //# the fraction of inputs on which the surrogate's predicted
    //# controller output equals the controller's actual output
    pub fn fidelity(&self, embeddings: &Matrix, controller_outputs: &[usize]) -> f32 {
        assert_eq!(embeddings.rows(), controller_outputs.len());
        let preds = self.predict(embeddings);
        let hits = preds.iter().zip(controller_outputs).filter(|(a, b)| a == b).count();
        hits as f32 / controller_outputs.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::Concept;
    use rand::RngExt;

    /// A toy "controller": embeddings are 8-dimensional; the output class
    /// is decided by which of two latent directions dominates, and the
    /// concept labels are quantized views of those same directions.
    fn toy_dataset(n: usize, seed: u64) -> (ConceptSet, SurrogateDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut concept_labels = Vec::new();
        let mut outputs = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.random_range(0.0..1.0);
            let b: f32 = rng.random_range(0.0..1.0);
            let noise: Vec<f32> = (0..6).map(|_| rng.random_range(-0.1..0.1)).collect();
            let mut row = vec![a, b];
            row.extend(noise);
            rows.push(row);
            let q = |v: f32| {
                if v <= 0.33 {
                    0
                } else if v <= 0.66 {
                    1
                } else {
                    2
                }
            };
            concept_labels.push(vec![q(a), q(b), q(1.0 - a)]);
            outputs.push(usize::from(a > b));
        }
        let concepts = ConceptSet::new(vec![
            Concept::new("Alpha High", "alpha"),
            Concept::new("Beta High", "beta"),
            Concept::new("Alpha Low", "inverse alpha"),
        ]);
        (
            concepts,
            SurrogateDataset { embeddings: Matrix::from_rows(&rows), concept_labels, outputs },
        )
    }

    #[test]
    fn concept_mapping_learns_labels() {
        let (_, ds) = toy_dataset(600, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut cm = ConceptMapping::new(&mut rng, 8, 32, 3, 3);
        let params = TrainParams::paper();
        let curve = cm.fit(&ds.embeddings, &ds.concept_labels, &params, &mut rng);
        assert!(curve.last().unwrap() < &curve[0], "loss must fall");
        let acc = cm.label_accuracy(&ds.embeddings, &ds.concept_labels);
        assert!(acc > 0.8, "concept accuracy {acc}");
    }

    #[test]
    fn concept_probs_sum_to_one_per_group() {
        let (_, ds) = toy_dataset(10, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let cm = ConceptMapping::new(&mut rng, 8, 16, 3, 3);
        let probs = cm.predict_probs(&ds.embeddings);
        for r in 0..10 {
            for g in 0..3 {
                let s: f32 = (0..3).map(|j| probs.get(r, g * 3 + j)).sum();
                assert!((s - 1.0).abs() < 1e-5, "group {g} row {r}: {s}");
            }
        }
    }

    #[test]
    fn full_surrogate_reaches_high_fidelity_on_toy_controller() {
        let (concepts, train) = toy_dataset(800, 4);
        let (_, test) = toy_dataset(300, 5);
        let model = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        assert!(fid > 0.9, "fidelity {fid}");
    }

    #[test]
    fn fidelity_is_measured_against_given_outputs() {
        let (concepts, train) = toy_dataset(300, 6);
        let model = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        let inverted: Vec<usize> = train.outputs.iter().map(|&y| 1 - y).collect();
        let normal = model.fidelity(&train.embeddings, &train.outputs);
        let wrong = model.fidelity(&train.embeddings, &inverted);
        assert!((normal + wrong - 1.0).abs() < 1e-5);
        assert!(normal > wrong);
    }

    #[test]
    fn elasticnet_sparsifies_output_weights() {
        let (concepts, train) = toy_dataset(500, 7);
        let strong = TrainParams { elastic_coeff: 5e-3, ..TrainParams::fast() };
        let weak = TrainParams { elastic_coeff: 0.0, ..TrainParams::fast() };
        let m_strong = AguaModel::fit(&concepts, 3, 2, &train, &strong);
        let m_weak = AguaModel::fit(&concepts, 3, 2, &train, &weak);
        let l1_strong = m_strong.output_mapping.weights().l1_norm();
        let l1_weak = m_weak.output_mapping.weights().l1_norm();
        assert!(
            l1_strong < l1_weak,
            "regularized weights {l1_strong} must be smaller than unregularized {l1_weak}"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (concepts, train) = toy_dataset(200, 8);
        let a = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        let b = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        assert_eq!(a.output_mapping.weights().as_slice(), b.output_mapping.weights().as_slice());
    }

    #[test]
    #[should_panic(expected = "concept class out of range")]
    fn dataset_validation_catches_bad_labels() {
        let (concepts, mut train) = toy_dataset(50, 9);
        train.concept_labels[0][0] = 9;
        let _ = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
    }

    // Checkpoint round-trips live with the codec: `agua-app`'s `codec`
    // tests restore an AguaModel from bytes and assert bit-identical
    // predictions.

    #[test]
    fn numeric_prediction_recovers_binned_regression_targets() {
        // Regression controller: output = class index mapped to bin
        // centres 0.5/1.0/... The dot-product readout must land near the
        // true numeric value.
        let (concepts, train) = toy_dataset(500, 21);
        let model = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        let bins = [0.5f32, 2.0];
        let preds = model.predict_numeric(&train.embeddings, &bins);
        // Check that predictions concentrate near the correct bin centre.
        let mut err = 0.0;
        for (p, &y) in preds.iter().zip(&train.outputs) {
            err += (p - bins[y]).abs();
        }
        err /= preds.len() as f32;
        assert!(err < 0.3, "mean numeric error {err}");
        let targets: Vec<f32> = train.outputs.iter().map(|&y| bins[y]).collect();
        let mae = model.numeric_mae(&train.embeddings, &targets, &bins);
        assert!((mae - err).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "one bin centre per output class")]
    fn numeric_prediction_validates_bins() {
        let (concepts, train) = toy_dataset(100, 22);
        let model = AguaModel::fit(&concepts, 3, 2, &train, &TrainParams::fast());
        let _ = model.predict_numeric(&train.embeddings, &[1.0, 2.0, 3.0]);
    }
}
