//! Criterion performance benches for the Agua reproduction: explanation
//! latency, surrogate training throughput, text-pipeline throughput, tree
//! induction, and simulator step rates.
//!
//! These are performance benches; the *accuracy* experiments regenerating
//! the paper's tables and figures live in `src/bin/` (one binary per
//! table/figure — see DESIGN.md).

use abr_env::{AbrSimulator, DatasetEra, TraceFamily, VideoManifest};
use agua::concepts::{cc_concepts, ddos_concepts};
use agua::explain::{batched, factual};
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_bench::synth::{bench_params, synthetic_surrogate, SynthSpec};
use agua_controllers::ddos::{generate_dataset, train_detector};
use agua_nn::parallel::{par_matmul, reference, with_thread_config, with_threads, ThreadConfig};
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use cc_env::{CapacityProcess, CcSimulator, LinkConfig, LinkPattern};
use criterion::{criterion_group, criterion_main, Criterion};
use ddos_env::{DdosObservation, FlowKind, FlowWindow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use trustee::{DecisionTree, TreeConfig};

/// Fits a small DDoS Agua model once for the explanation benches.
fn fitted_model() -> (AguaModel, Matrix) {
    let flows = generate_dataset(300, 1);
    let detector = train_detector(&flows, 1);
    let observations: Vec<DdosObservation> =
        flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
    let features =
        Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
    let (embeddings, logits) = detector.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();
    let concepts = ddos_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let sections: Vec<_> = observations.iter().map(|o| o.sections()).collect();
    let concept_labels = labeler.label_batch(&sections, 42);
    let ds = SurrogateDataset { embeddings: embeddings.clone(), concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, 2, &ds, &TrainParams::fast());
    (model, embeddings)
}

fn bench_explanations(c: &mut Criterion) {
    let (model, embeddings) = fitted_model();
    let one = embeddings.select_rows(&[0]);

    c.bench_function("factual_explanation", |b| {
        b.iter(|| factual(black_box(&model), black_box(&one)))
    });
    c.bench_function("batched_explanation_300", |b| {
        b.iter(|| batched(black_box(&model), black_box(&embeddings), 1))
    });
    c.bench_function("surrogate_predict_300", |b| b.iter(|| model.predict(black_box(&embeddings))));
}

fn bench_surrogate_training(c: &mut Criterion) {
    let (_, embeddings) = fitted_model();
    let concepts = ddos_concepts();
    let labels: Vec<Vec<usize>> =
        (0..embeddings.rows()).map(|i| vec![i % 3; concepts.len()]).collect();
    let outputs: Vec<usize> = (0..embeddings.rows()).map(|i| i % 2).collect();
    let ds = SurrogateDataset { embeddings, concept_labels: labels, outputs };
    let params = TrainParams { cm_epochs: 10, om_epochs: 20, ..TrainParams::paper() };

    let mut group = c.benchmark_group("training");
    group.sample_size(10);
    group.bench_function("surrogate_fit_300x10epochs", |b| {
        b.iter(|| AguaModel::fit(black_box(&concepts), 3, 2, black_box(&ds), &params))
    });
    group.finish();
}

fn bench_text_pipeline(c: &mut Criterion) {
    let describer = Describer::new(DescriberConfig::high_quality());
    let embedder = Embedder::new(512);
    let obs = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::BenignHttp, 7));
    let sections = obs.sections();
    let description = describer.describe_seeded(&sections, 1);
    let concepts = cc_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );

    c.bench_function("describe_input", |b| {
        b.iter(|| describer.describe_seeded(black_box(&sections), 1))
    });
    c.bench_function("embed_description", |b| b.iter(|| embedder.embed(black_box(&description))));
    c.bench_function("label_input_end_to_end", |b| {
        let cc_obs = cc_env::CcObservation {
            send_mbps: vec![4.0; 10],
            delivered_mbps: vec![4.0; 10],
            latency_ms: vec![40.0; 10],
            loss_rate: vec![0.0; 10],
        };
        let cc_sections = cc_obs.sections();
        b.iter(|| labeler.label(black_box(&cc_sections), 3))
    });
}

fn bench_tree_induction(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    use rand::RngExt;
    let features: Vec<Vec<f32>> =
        (0..1000).map(|_| (0..40).map(|_| rng.random_range(0.0..1.0f32)).collect()).collect();
    let labels: Vec<usize> =
        features.iter().map(|f| usize::from(f[3] > 0.5) + usize::from(f[17] > 0.7)).collect();

    let mut group = c.benchmark_group("trustee");
    group.sample_size(10);
    group.bench_function("cart_fit_1000x40", |b| {
        b.iter(|| {
            DecisionTree::fit(black_box(&features), black_box(&labels), 3, TreeConfig::default())
        })
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    c.bench_function("abr_full_video_50_chunks", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let manifest = VideoManifest::generate(50, 1.0, &mut rng);
        let trace = TraceFamily::FourG.generate(300, &mut rng);
        b.iter(|| {
            let mut sim = AbrSimulator::new(manifest.clone(), trace.clone());
            while !sim.done() {
                sim.step(2);
            }
            black_box(sim.total_qoe())
        })
    });
    c.bench_function("cc_1000_monitor_intervals", |b| {
        let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 1000, 1);
        b.iter(|| {
            let mut sim = CcSimulator::new(cap.clone(), LinkConfig::default(), 4.0);
            while !sim.done() {
                sim.step(4);
            }
            black_box(sim.rate_mbps())
        })
    });
    c.bench_function("trace_generation_300s", |b| {
        b.iter(|| DatasetEra::Train2021.generate_traces(black_box(4), 300, 7))
    });
    c.bench_function("flow_window_generation", |b| {
        b.iter(|| FlowWindow::generate_seeded(FlowKind::SynFlood, black_box(9)))
    });
}

/// 1-thread vs N-thread groups for the deterministic parallel backend.
/// The workload mirrors `src/bin/bench_parallel.rs` (which also checks
/// byte-identity and records the speedups in `BENCH_parallel.json`).
fn bench_parallel_backend(c: &mut Criterion) {
    let spec = SynthSpec::large();
    let (concepts, dataset) = synthetic_surrogate(spec);
    let params = bench_params(spec.seed);
    let a = Matrix::from_fn(1024, 256, |r, col| ((r * 31 + col * 7) % 101) as f32 / 50.0 - 1.0);
    let b = Matrix::from_fn(256, 512, |r, col| ((r * 13 + col * 17) % 97) as f32 / 48.0 - 1.0);

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("matmul_1024x256x512_t{threads}"), |bench| {
            bench.iter(|| with_threads(threads, || par_matmul(black_box(&a), black_box(&b))))
        });
        group.bench_function(&format!("surrogate_fit_2000_t{threads}"), |bench| {
            bench.iter(|| {
                with_threads(threads, || {
                    AguaModel::fit(
                        black_box(&concepts),
                        spec.k,
                        spec.n_outputs,
                        black_box(&dataset),
                        &params,
                    )
                })
            })
        });
    }
    group.finish();

    let model = AguaModel::fit(&concepts, spec.k, spec.n_outputs, &dataset, &params);
    let mut group = c.benchmark_group("parallel_explain");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("batched_explanation_2000_t{threads}"), |bench| {
            bench.iter(|| {
                with_threads(threads, || {
                    batched(black_box(&model), black_box(&dataset.embeddings), 0)
                })
            })
        });
    }
    group.finish();
}

/// Persistent pool vs the retired per-op scoped-spawn dispatcher, same
/// tiled kernel and worker count — isolates the dispatch cost.
fn bench_pool_vs_scope(c: &mut Criterion) {
    let a = Matrix::from_fn(500, 128, |r, col| ((r * 31 + col * 7) % 101) as f32 / 50.0 - 1.0);
    let b = Matrix::from_fn(128, 256, |r, col| ((r * 13 + col * 17) % 97) as f32 / 48.0 - 1.0);
    let forced = ThreadConfig { threads: 4, min_flops: 0 };

    let mut group = c.benchmark_group("dispatch");
    group.sample_size(20);
    group.bench_function("pool_tiled_t4", |bench| {
        bench.iter(|| with_thread_config(forced, || par_matmul(black_box(&a), black_box(&b))))
    });
    group.bench_function("scoped_tiled_t4", |bench| {
        bench.iter(|| reference::scoped_tiled_matmul(black_box(&a), black_box(&b), 4))
    });
    group.bench_function("scoped_scalar_t4", |bench| {
        bench.iter(|| reference::scoped_scalar_matmul(black_box(&a), black_box(&b), 4))
    });
    group.finish();
}

/// Column-tiled vs untiled scalar kernels, both sequential — isolates
/// the kernel win from any dispatch effects.
fn bench_tiled_vs_scalar(c: &mut Criterion) {
    let a = Matrix::from_fn(500, 128, |r, col| ((r * 31 + col * 7) % 101) as f32 / 50.0 - 1.0);
    let b = Matrix::from_fn(128, 256, |r, col| ((r * 13 + col * 17) % 97) as f32 / 48.0 - 1.0);

    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    group.bench_function("matmul_tiled_seq", |bench| {
        bench.iter(|| black_box(&a).matmul(black_box(&b)))
    });
    group.bench_function("matmul_scalar_seq", |bench| {
        bench.iter(|| black_box(&a).matmul_reference(black_box(&b)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_explanations,
    bench_surrogate_training,
    bench_text_pipeline,
    bench_tree_induction,
    bench_simulators,
    bench_parallel_backend,
    bench_pool_vs_scope,
    bench_tiled_vs_scalar
);
criterion_main!(benches);
