//! Reporting helpers shared by the experiment binaries: aligned table
//! rows, ASCII series plots, and JSON result persistence.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Prints a header banner for an experiment.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Renders a labelled horizontal ASCII bar. A non-finite `value` (or
/// `max`) renders an empty bar rather than an arbitrary-width one.
pub fn bar(label: &str, value: f32, max: f32, width: usize) -> String {
    let frac = if value.is_finite() && max.is_finite() && max > 0.0 {
        (value / max).clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * width as f32).round() as usize;
    let filled = filled.min(width);
    format!("{label:<46} {value:>8.4} |{}{}|", "#".repeat(filled), " ".repeat(width - filled))
}

/// Glyph rendered by [`sparkline`] for a non-finite sample.
pub const SPARK_NON_FINITE: char = '·';

/// Renders a numeric series as a compact sparkline-style strip.
///
/// The scale is computed over the *finite* samples only — a stray NaN or
/// infinity (e.g. a diverged loss) no longer poisons the min/max fold and
/// flattens every other glyph. Non-finite samples themselves render as
/// [`SPARK_NON_FINITE`] so their position in the series stays visible.
pub fn sparkline(values: &[f32]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite = values.iter().cloned().filter(|v| v.is_finite());
    let min = finite.clone().fold(f32::MAX, f32::min);
    let max = finite.fold(f32::MIN, f32::max);
    let span = (max - min).max(1e-9);
    values
        .iter()
        .map(|v| {
            if !v.is_finite() || min > max {
                return SPARK_NON_FINITE;
            }
            let idx = (((v - min) / span) * 7.0).round() as usize;
            GLYPHS[idx.min(7)]
        })
        .collect()
}

/// Empirical CDF of a sample at `points` evenly spaced quantile knots.
pub fn empirical_cdf(samples: &[f32], points: usize) -> Vec<(f32, f32)> {
    assert!(!samples.is_empty(), "CDF of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    (0..points)
        .map(|i| {
            let x = min + (max - min) * i as f32 / (points - 1).max(1) as f32;
            let count = sorted.iter().filter(|&&v| v <= x).count();
            (x, count as f32 / sorted.len() as f32)
        })
        .collect()
}

/// Directory where experiment outputs are persisted.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("results");
    fs::create_dir_all(&dir).expect("create results directory");
    dir
}

/// Writes a serializable result to `results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    fs::write(&path, json).expect("write result file");
    println!("\n[saved {}]", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_with_value() {
        let half = bar("x", 0.5, 1.0, 10);
        assert!(half.contains("#####"));
        assert!(!half.contains("######"));
    }

    #[test]
    fn sparkline_has_one_glyph_per_value() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn sparkline_isolates_non_finite_samples() {
        // A NaN or infinity must neither panic nor flatten the scale of
        // the finite samples around it.
        let s = sparkline(&[0.0, f32::NAN, 1.0, f32::INFINITY, 0.5]);
        let glyphs: Vec<char> = s.chars().collect();
        assert_eq!(glyphs.len(), 5);
        assert_eq!(glyphs[1], SPARK_NON_FINITE);
        assert_eq!(glyphs[3], SPARK_NON_FINITE);
        assert_eq!(glyphs[0], '▁', "finite min still maps to the lowest glyph");
        assert_eq!(glyphs[2], '█', "finite max still maps to the highest glyph");
        assert_ne!(glyphs[4], glyphs[2], "midpoint keeps its own level");
    }

    #[test]
    fn sparkline_of_only_non_finite_samples_is_all_sentinels() {
        let s = sparkline(&[f32::NAN, f32::NEG_INFINITY]);
        assert!(s.chars().all(|c| c == SPARK_NON_FINITE), "got {s:?}");
    }

    #[test]
    fn bar_renders_non_finite_values_as_empty() {
        for v in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let line = bar("x", v, 1.0, 10);
            assert!(!line.contains('#'), "got {line:?}");
            assert!(line.chars().filter(|&c| c == ' ').count() >= 10);
        }
        let line = bar("x", 0.5, f32::NAN, 10);
        assert!(!line.contains('#'), "got {line:?}");
    }

    #[test]
    fn cdf_is_monotone_from_low_to_one() {
        let cdf = empirical_cdf(&[1.0, 2.0, 3.0, 4.0], 5);
        assert!(cdf.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-6);
    }
}
