//! Compatibility re-exports of the application plumbing.
//!
//! The application builders, rollout datasets, and surrogate-fitting
//! entry points moved to the `agua-app` crate (the registry +
//! artifact-store spine shared with the CLI). This module re-exports
//! them so existing `agua_bench::apps::…` paths keep compiling for one
//! release; new code should depend on `agua_app` directly.

pub use agua_app::{
    abr_app, cc_app, data::fit_agua_observed, ddos_app, fit_agua, fit_agua_jobs, labeler_for,
    AppData, FitJob, LlmVariant,
};
