//! Application builders: train each controller, roll it out to collect
//! explanation datasets, and fit Agua surrogates / Trustee baselines.

use abr_env::{AbrSimulator, DatasetEra, VideoManifest};
use agua::concepts::ConceptSet;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::policy::PolicyNet;
use agua_controllers::{abr, cc, ddos};
use agua_nn::Matrix;
use agua_text::describer::{DescribedSection, Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use cc_env::{CapacityProcess, CcSimulator};
use ddos_env::DdosObservation;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A rollout dataset ready for the full Agua/Trustee pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppData {
    /// Raw controller input features (Trustee distills over these).
    pub features: Vec<Vec<f32>>,
    /// Describer sections per input (Agua's labelling pipeline input).
    pub sections: Vec<Vec<DescribedSection>>,
    /// Controller embeddings `h(x)`, one row per input.
    pub embeddings: Matrix,
    /// Controller outputs (greedy argmax), one per input.
    pub outputs: Vec<usize>,
    /// Which trace/episode each input came from (for trace-level
    /// aggregation in the drift experiments).
    pub trace_ids: Vec<usize>,
}

impl AppData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Embedding rows belonging to one trace.
    pub fn trace_embeddings(&self, trace: usize) -> Matrix {
        let idx: Vec<usize> = self
            .trace_ids
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == trace)
            .map(|(i, _)| i)
            .collect();
        self.embeddings.select_rows(&idx)
    }

    /// Distinct trace ids present.
    pub fn trace_count(&self) -> usize {
        self.trace_ids.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Which simulated LLM + embedding stack labels the training data,
/// mirroring Table 2's GPT-4o vs Llama-3.3 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmVariant {
    /// GPT-4o-class describer + large (512-d) embeddings.
    HighQuality,
    /// Llama-3.3-class describer + BGE-M3-class (384-d) embeddings.
    OpenSource,
}

impl LlmVariant {
    /// The describer configuration of this variant.
    pub fn describer_config(self) -> DescriberConfig {
        match self {
            LlmVariant::HighQuality => DescriberConfig::high_quality(),
            LlmVariant::OpenSource => DescriberConfig::open_source(),
        }
    }

    /// The embedding model of this variant.
    pub fn embedder(self) -> Embedder {
        match self {
            LlmVariant::HighQuality => Embedder::with_seed(512, 0x0A1),
            LlmVariant::OpenSource => Embedder::with_seed(384, 0xB6E),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LlmVariant::HighQuality => "GPT-4o-class",
            LlmVariant::OpenSource => "Llama-3.3-class",
        }
    }
}

/// Builds a labeler for a concept set under an LLM variant.
pub fn labeler_for(concepts: &ConceptSet, variant: LlmVariant) -> ConceptLabeler {
    ConceptLabeler::new(
        concepts,
        Describer::new(variant.describer_config()),
        variant.embedder(),
        Quantizer::calibrated(),
    )
}

/// Runs the labelling pipeline on `train` and fits an Agua surrogate.
pub fn fit_agua(
    concepts: &ConceptSet,
    n_outputs: usize,
    train: &AppData,
    variant: LlmVariant,
    params: &TrainParams,
    label_seed: u64,
) -> (AguaModel, ConceptLabeler) {
    fit_agua_observed(concepts, n_outputs, train, variant, params, label_seed, &agua_obs::Noop)
}

/// [`fit_agua`] reporting pipeline progress (labelling span, per-epoch
/// losses, fit completion) to `obs`. Subscribers observe only: the model
/// is byte-identical for any `obs`.
#[allow(clippy::too_many_arguments)]
pub fn fit_agua_observed(
    concepts: &ConceptSet,
    n_outputs: usize,
    train: &AppData,
    variant: LlmVariant,
    params: &TrainParams,
    label_seed: u64,
    obs: &dyn agua_obs::Subscriber,
) -> (AguaModel, ConceptLabeler) {
    let labeler = labeler_for(concepts, variant);
    let concept_labels = labeler.label_batch_observed(&train.sections, label_seed, 4, obs);
    let dataset = SurrogateDataset {
        embeddings: train.embeddings.clone(),
        concept_labels,
        outputs: train.outputs.clone(),
    };
    let model = AguaModel::fit_observed(
        concepts,
        labeler.quantizer().classes(),
        n_outputs,
        &dataset,
        params,
        obs,
    );
    (model, labeler)
}

/// One self-contained surrogate-fitting job for [`fit_agua_jobs`].
pub struct FitJob<'a> {
    /// Concept set of the application.
    pub concepts: &'a ConceptSet,
    /// Controller output dimensionality.
    pub n_outputs: usize,
    /// Training rollouts.
    pub train: &'a AppData,
    /// Simulated LLM variant.
    pub variant: LlmVariant,
    /// Training hyper-parameters (carry the seed).
    pub params: &'a TrainParams,
    /// Labelling seed.
    pub label_seed: u64,
}

/// Runs independent [`fit_agua`] jobs on scoped worker threads — the
/// embarrassingly-parallel outer loop of the multi-app experiments.
/// Every job is fully seeded and self-contained, so the results are
/// identical to running the jobs sequentially, in job order.
pub fn fit_agua_jobs(jobs: &[FitJob<'_>]) -> Vec<(AguaModel, ConceptLabeler)> {
    agua_nn::parallel::par_map(jobs, |j| {
        fit_agua(j.concepts, j.n_outputs, j.train, j.variant, j.params, j.label_seed)
    })
}

/// ABR application plumbing.
pub mod abr_app {
    use super::*;

    /// Chunks per video in rollouts.
    pub const CHUNKS: usize = 50;

    /// Trains the Gelato-style ABR controller by behaviour cloning the
    /// MPC teacher on 2021-era traces.
    pub fn build_controller(seed: u64) -> PolicyNet {
        let samples = abr::collect_teacher_dataset(DatasetEra::Train2021, 60, CHUNKS, seed);
        abr::train_controller(&samples, seed)
    }

    /// Rolls the trained controller greedily over `n_traces` traces of
    /// `era`, recording every decision.
    pub fn rollout(controller: &PolicyNet, era: DatasetEra, n_traces: usize, seed: u64) -> AppData {
        let traces = era.generate_traces(n_traces, CHUNKS * 6, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0AB);
        let mut features = Vec::new();
        let mut sections = Vec::new();
        let mut emb_rows: Vec<Vec<f32>> = Vec::new();
        let mut outputs = Vec::new();
        let mut trace_ids = Vec::new();
        for (trace_id, trace) in traces.into_iter().enumerate() {
            let manifest = VideoManifest::generate(CHUNKS, era.mean_complexity(), &mut rng);
            let mut sim = AbrSimulator::new(manifest, trace);
            while !sim.done() {
                let obs = sim.observation();
                let f = obs.features();
                let x = Matrix::row_vector(&f);
                let (h, logits) = controller.embeddings_and_logits(&x);
                let action = logits.argmax_row(0);
                features.push(f);
                sections.push(obs.sections());
                emb_rows.push(h.row(0).to_vec());
                outputs.push(action);
                trace_ids.push(trace_id);
                sim.step(action);
            }
        }
        AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
    }

    /// The motivating state of paper Fig. 1a / §2.2: transmission times
    /// ballooned from ~1 s to ~3 s (collapsing throughput), improved
    /// slightly in the last step, and the buffer is recovering from a
    /// dip — yet the controller still picks a low bitrate.
    pub fn motivating_observation() -> abr_env::AbrObservation {
        abr_env::AbrObservation {
            quality_db: vec![16.0, 15.8, 15.5, 14.9, 13.9, 12.8, 12.0, 11.4, 11.2, 11.3],
            chunk_size_mb: vec![2.2, 2.1, 2.0, 1.8, 1.4, 1.0, 0.8, 0.7, 0.65, 0.7],
            tx_time_s: vec![1.0, 1.1, 1.2, 1.5, 1.9, 2.4, 2.8, 3.0, 3.1, 2.0],
            throughput_mbps: vec![2.2, 1.9, 1.7, 1.2, 0.75, 0.45, 0.3, 0.25, 0.21, 0.35],
            buffer_s: vec![9.0, 8.4, 7.5, 6.2, 4.8, 3.6, 2.9, 2.6, 2.8, 3.4],
            qoe: vec![3.2, 3.1, 3.0, 2.7, 2.3, 1.9, 1.7, 1.6, 1.6, 1.8],
            stall_s: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.4, 0.3, 0.1, 0.0],
            upcoming_quality_db: vec![14.8, 14.5, 14.2, 14.6, 14.4],
            upcoming_size_mb: vec![2.8, 3.1, 3.4, 3.2, 3.0],
        }
    }

    /// Human-readable names of the ABR feature vector entries (for
    /// Trustee decision paths).
    pub fn feature_names() -> Vec<String> {
        let mut names = Vec::new();
        let histories = [
            ("quality", abr_env::HISTORY),
            ("chunk_size", abr_env::HISTORY),
            ("tx_time", abr_env::HISTORY),
            ("throughput", abr_env::HISTORY),
            ("buffer", abr_env::HISTORY),
            ("qoe", abr_env::HISTORY),
            ("stall", abr_env::HISTORY),
            ("upcoming_quality", abr_env::LOOKAHEAD),
            ("upcoming_size", abr_env::LOOKAHEAD),
        ];
        for (base, len) in histories {
            for t in 0..len {
                let lag = len - t;
                names.push(format!("{base}[t-{lag}]"));
            }
        }
        names
    }
}

/// Congestion-control application plumbing.
pub mod cc_app {
    use super::*;
    use agua_controllers::cc::CcVariant;

    /// Trains a CC controller of the given variant (behaviour cloning
    /// with two DAgger aggregation rounds).
    pub fn build_controller(variant: CcVariant, seed: u64) -> PolicyNet {
        cc::train_controller_dagger(variant, 700, 3, seed)
    }

    /// Rolls the trained controller greedily over the training link
    /// patterns, recording `n_samples` decisions.
    pub fn rollout(
        controller: &PolicyNet,
        variant: CcVariant,
        n_samples: usize,
        seed: u64,
    ) -> AppData {
        let mut rng = StdRng::seed_from_u64(seed);
        const SCENARIOS: usize = 12;
        let per_pattern = n_samples / SCENARIOS + 1;
        let mut features = Vec::new();
        let mut sections = Vec::new();
        let mut emb_rows: Vec<Vec<f32>> = Vec::new();
        let mut outputs = Vec::new();
        let mut trace_ids = Vec::new();
        for trace_id in 0..SCENARIOS {
            let (pattern, config) = cc::sample_scenario(trace_id, &mut rng);
            let cap = CapacityProcess::generate(pattern, per_pattern + variant.history(), &mut rng);
            let initial = rng.random_range(0.3..1.0) * config.nominal_mbps;
            let mut sim = CcSimulator::with_history(cap, config, initial, variant.history());
            for _ in 0..variant.history().min(sim.mis_left()) {
                sim.step_at_current_rate();
            }
            while !sim.done() && features.len() < (trace_id + 1) * per_pattern {
                let obs = sim.observation();
                let f = obs.features(variant.with_avg_latency());
                let x = Matrix::row_vector(&f);
                let (h, logits) = controller.embeddings_and_logits(&x);
                let action = logits.argmax_row(0);
                features.push(f);
                sections.push(obs.sections());
                emb_rows.push(h.row(0).to_vec());
                outputs.push(action);
                trace_ids.push(trace_id);
                sim.step(action);
            }
        }
        features.truncate(n_samples);
        sections.truncate(n_samples);
        emb_rows.truncate(n_samples);
        outputs.truncate(n_samples);
        trace_ids.truncate(n_samples);
        AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
    }

    /// Feature names for the CC feature vector.
    pub fn feature_names(variant: CcVariant) -> Vec<String> {
        let h = variant.history();
        let mut names = Vec::new();
        for base in ["send_rate", "delivered", "latency", "loss"] {
            for t in 0..h {
                let lag = h - t;
                names.push(format!("{base}[t-{lag}]"));
            }
        }
        if variant.with_avg_latency() {
            names.push("avg_latency".to_string());
        }
        names
    }
}

/// DDoS application plumbing.
pub mod ddos_app {
    use super::*;

    /// Trains the LUCID-style detector on generated flows.
    pub fn build_controller(seed: u64) -> PolicyNet {
        let train = ddos::generate_dataset(1000, seed);
        ddos::train_detector(&train, seed)
    }

    /// Generates flows and records the *detector's* outputs (fidelity is
    /// measured against the controller, not the ground truth).
    pub fn rollout(controller: &PolicyNet, n_samples: usize, seed: u64) -> AppData {
        let samples = ddos::generate_dataset(n_samples, seed);
        let mut features = Vec::new();
        let mut sections = Vec::new();
        let mut emb_rows: Vec<Vec<f32>> = Vec::new();
        let mut outputs = Vec::new();
        let mut trace_ids = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            let obs = DdosObservation::new(s.window.clone());
            let f = obs.features();
            let x = Matrix::row_vector(&f);
            let (h, logits) = controller.embeddings_and_logits(&x);
            features.push(f);
            sections.push(obs.sections());
            emb_rows.push(h.row(0).to_vec());
            outputs.push(logits.argmax_row(0));
            trace_ids.push(i);
        }
        AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
    }

    /// Generates flows of one kind only and records detector outputs.
    pub fn rollout_kind(
        controller: &PolicyNet,
        kind: ddos_env::FlowKind,
        n_samples: usize,
        seed: u64,
    ) -> AppData {
        let windows = ddos_env::FlowWindow::generate_dataset(&[kind], n_samples, seed);
        let mut features = Vec::new();
        let mut sections = Vec::new();
        let mut emb_rows: Vec<Vec<f32>> = Vec::new();
        let mut outputs = Vec::new();
        let mut trace_ids = Vec::new();
        for (i, w) in windows.into_iter().enumerate() {
            let obs = DdosObservation::new(w);
            let f = obs.features();
            let x = Matrix::row_vector(&f);
            let (h, logits) = controller.embeddings_and_logits(&x);
            features.push(f);
            sections.push(obs.sections());
            emb_rows.push(h.row(0).to_vec());
            outputs.push(logits.argmax_row(0));
            trace_ids.push(i);
        }
        AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
    }

    /// Feature names for the flow feature matrix.
    pub fn feature_names() -> Vec<String> {
        let mut names = Vec::new();
        for base in ["iat", "size", "outbound", "syn", "ack", "udp", "entropy", "src_consistency"] {
            for p in 0..ddos_env::WINDOW {
                names.push(format!("{base}[pkt{p}]"));
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agua::concepts::{abr_concepts, ddos_concepts};

    #[test]
    fn abr_rollout_produces_consistent_data() {
        let controller = abr_app::build_controller(1);
        let data = abr_app::rollout(&controller, DatasetEra::Train2021, 4, 2);
        assert_eq!(data.len(), 4 * abr_app::CHUNKS);
        assert_eq!(data.embeddings.rows(), data.len());
        assert_eq!(data.embeddings.cols(), abr::ABR_EMB_DIM);
        assert_eq!(data.features[0].len(), abr_env::observation::FEATURE_DIM);
        assert_eq!(abr_app::feature_names().len(), abr_env::observation::FEATURE_DIM);
        assert_eq!(data.trace_count(), 4);
    }

    #[test]
    fn abr_agua_pipeline_fits_end_to_end_on_a_small_sample() {
        let controller = abr_app::build_controller(3);
        let train = abr_app::rollout(&controller, DatasetEra::Train2021, 6, 4);
        let test = abr_app::rollout(&controller, DatasetEra::Train2021, 3, 5);
        let concepts = abr_concepts();
        let params = TrainParams::fast();
        let (model, _) =
            fit_agua(&concepts, abr_env::LEVELS, &train, LlmVariant::HighQuality, &params, 9);
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        assert!(fid > 0.6, "small-sample ABR fidelity {fid}");
    }

    #[test]
    fn ddos_rollout_and_fidelity() {
        let controller = ddos_app::build_controller(7);
        let train = ddos_app::rollout(&controller, 300, 8);
        let test = ddos_app::rollout(&controller, 150, 9);
        let concepts = ddos_concepts();
        let (model, _) =
            fit_agua(&concepts, 2, &train, LlmVariant::HighQuality, &TrainParams::fast(), 10);
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        assert!(fid > 0.85, "small-sample DDoS fidelity {fid}");
    }
}
