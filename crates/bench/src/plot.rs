//! Minimal SVG chart rendering for the experiment figures.
//!
//! The experiment binaries persist their numbers to `results/*.json`;
//! the `render_figures` binary turns those into standalone SVG files so
//! the paper's figures can be looked at, not just read. Hand-rolled
//! (the offline crate budget has no plotting library): line charts for
//! curves/CDFs and horizontal bar charts for explanation weights and
//! fidelity comparisons.

/// A single data series of a line chart.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points, in drawing order.
    pub points: Vec<(f32, f32)>,
}

/// A line chart (curves, CDFs).
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series to draw.
    pub series: Vec<Series>,
}

/// A horizontal bar chart (explanation weights, fidelity comparisons).
#[derive(Debug, Clone)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Value-axis label.
    pub x_label: String,
    /// `(label, value)` bars, drawn top to bottom.
    pub bars: Vec<(String, f32)>,
}

const WIDTH: f32 = 640.0;
const HEIGHT: f32 = 400.0;
const MARGIN_L: f32 = 70.0;
const MARGIN_R: f32 = 20.0;
const MARGIN_T: f32 = 40.0;
const MARGIN_B: f32 = 50.0;
const PALETTE: [&str; 6] = ["#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"];

fn escape(text: &str) -> String {
    text.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Chooses "nice" rounded tick positions covering `[min, max]`.
fn ticks(min: f32, max: f32, target: usize) -> Vec<f32> {
    let span = (max - min).max(1e-9);
    let raw_step = span / target as f32;
    let mag = 10f32.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| span / s <= target as f32 + 0.5)
        .unwrap_or(10.0 * mag);
    let start = (min / step).floor() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= max + step * 0.5 {
        if t >= min - step * 0.5 {
            out.push(t);
        }
        t += step;
    }
    out
}

fn fmt_tick(v: f32) -> String {
    if v.abs() >= 100.0 || v.fract().abs() < 1e-6 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

impl LineChart {
    /// Renders the chart to an SVG document.
    ///
    /// # Panics
    /// Panics if the chart has no series or a series has no points.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "a line chart needs series");
        for s in &self.series {
            assert!(!s.points.is_empty(), "series {} has no points", s.name);
        }
        let all: Vec<(f32, f32)> =
            self.series.iter().flat_map(|s| s.points.iter().copied()).collect();
        let (mut x_min, mut x_max) = (f32::MAX, f32::MIN);
        let (mut y_min, mut y_max) = (f32::MAX, f32::MIN);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if (y_max - y_min).abs() < 1e-9 {
            y_min -= 0.5;
            y_max += 0.5;
        }
        if (x_max - x_min).abs() < 1e-9 {
            x_min -= 0.5;
            x_max += 0.5;
        }
        // Pad the y-range slightly.
        let pad = (y_max - y_min) * 0.08;
        y_min -= pad;
        y_max += pad;

        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f32| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = |y: f32| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut svg = svg_header(&self.title);
        // Axes and grid.
        for t in ticks(y_min, y_max, 5) {
            let y = sy(t);
            svg.push_str(&format!(
                "<line x1='{MARGIN_L}' y1='{y:.1}' x2='{:.1}' y2='{y:.1}' stroke='#ddd'/>\
                 <text x='{:.1}' y='{:.1}' font-size='11' text-anchor='end' fill='#444'>{}</text>",
                WIDTH - MARGIN_R,
                MARGIN_L - 6.0,
                y + 4.0,
                fmt_tick(t)
            ));
        }
        for t in ticks(x_min, x_max, 6) {
            let x = sx(t);
            svg.push_str(&format!(
                "<line x1='{x:.1}' y1='{MARGIN_T}' x2='{x:.1}' y2='{:.1}' stroke='#eee'/>\
                 <text x='{x:.1}' y='{:.1}' font-size='11' text-anchor='middle' fill='#444'>{}</text>",
                HEIGHT - MARGIN_B,
                HEIGHT - MARGIN_B + 16.0,
                fmt_tick(t)
            ));
        }
        svg.push_str(&axis_labels(&self.x_label, &self.y_label));

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let path: Vec<String> = s
                .points
                .iter()
                .enumerate()
                .map(|(j, &(x, y))| {
                    format!("{}{:.1},{:.1}", if j == 0 { "M" } else { "L" }, sx(x), sy(y))
                })
                .collect();
            svg.push_str(&format!(
                "<path d='{}' fill='none' stroke='{color}' stroke-width='2'/>",
                path.join(" ")
            ));
            // Legend entry.
            let ly = MARGIN_T + 8.0 + i as f32 * 16.0;
            svg.push_str(&format!(
                "<line x1='{:.1}' y1='{ly:.1}' x2='{:.1}' y2='{ly:.1}' stroke='{color}' \
                 stroke-width='3'/><text x='{:.1}' y='{:.1}' font-size='12' fill='#222'>{}</text>",
                WIDTH - MARGIN_R - 150.0,
                WIDTH - MARGIN_R - 130.0,
                WIDTH - MARGIN_R - 124.0,
                ly + 4.0,
                escape(&s.name)
            ));
        }
        svg.push_str("</svg>\n");
        svg
    }
}

impl BarChart {
    /// Renders the chart to an SVG document.
    ///
    /// # Panics
    /// Panics if the chart has no bars.
    pub fn render(&self) -> String {
        assert!(!self.bars.is_empty(), "a bar chart needs bars");
        let max = self.bars.iter().map(|(_, v)| v.abs()).fold(0.0f32, f32::max).max(1e-9);
        let label_w = 240.0;
        let plot_w = WIDTH - label_w - MARGIN_R - 60.0;
        let bar_h = ((HEIGHT - MARGIN_T - MARGIN_B) / self.bars.len() as f32).min(34.0);

        let mut svg = svg_header(&self.title);
        for (i, (label, value)) in self.bars.iter().enumerate() {
            let y = MARGIN_T + i as f32 * bar_h;
            let w = value.abs() / max * plot_w;
            let color = PALETTE[0];
            svg.push_str(&format!(
                "<text x='{:.1}' y='{:.1}' font-size='12' text-anchor='end' fill='#222'>{}</text>\
                 <rect x='{label_w}' y='{:.1}' width='{w:.1}' height='{:.1}' fill='{color}'/>\
                 <text x='{:.1}' y='{:.1}' font-size='11' fill='#444'>{value:.3}</text>",
                label_w - 8.0,
                y + bar_h * 0.62,
                escape(label),
                y + bar_h * 0.15,
                bar_h * 0.7,
                label_w + w + 6.0,
                y + bar_h * 0.62,
            ));
        }
        svg.push_str(&format!(
            "<text x='{:.1}' y='{:.1}' font-size='12' text-anchor='middle' fill='#222'>{}</text>",
            label_w + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        ));
        svg.push_str("</svg>\n");
        svg
    }
}

fn svg_header(title: &str) -> String {
    format!(
        "<svg xmlns='http://www.w3.org/2000/svg' width='{WIDTH}' height='{HEIGHT}' \
         viewBox='0 0 {WIDTH} {HEIGHT}'>\
         <rect width='100%' height='100%' fill='white'/>\
         <text x='{:.1}' y='24' font-size='15' font-weight='bold' text-anchor='middle' \
         fill='#111'>{}</text>",
        WIDTH / 2.0,
        escape(title)
    )
}

fn axis_labels(x_label: &str, y_label: &str) -> String {
    format!(
        "<text x='{:.1}' y='{:.1}' font-size='12' text-anchor='middle' fill='#222'>{}</text>\
         <text x='16' y='{:.1}' font-size='12' text-anchor='middle' fill='#222' \
         transform='rotate(-90 16 {:.1})'>{}</text>",
        MARGIN_L + (WIDTH - MARGIN_L - MARGIN_R) / 2.0,
        HEIGHT - 12.0,
        escape(x_label),
        (HEIGHT - MARGIN_B + MARGIN_T) / 2.0,
        (HEIGHT - MARGIN_B + MARGIN_T) / 2.0,
        escape(y_label)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> LineChart {
        LineChart {
            title: "QoE vs step".into(),
            x_label: "step".into(),
            y_label: "QoE".into(),
            series: vec![
                Series {
                    name: "concept".into(),
                    points: (0..10).map(|i| (i as f32, 3.0 + 0.02 * i as f32)).collect(),
                },
                Series {
                    name: "traditional".into(),
                    points: (0..10).map(|i| (i as f32, 3.0 + 0.01 * i as f32)).collect(),
                },
            ],
        }
    }

    #[test]
    fn line_chart_is_valid_svg_with_all_series() {
        let svg = line().render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("QoE vs step"));
        assert!(svg.contains("concept"));
        assert!(svg.contains("traditional"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn bar_chart_draws_one_rect_per_bar() {
        let chart = BarChart {
            title: "weights".into(),
            x_label: "weight".into(),
            bars: vec![
                ("Extreme Network Degradation".into(), 0.62),
                ("Recent Improvement".into(), 0.11),
            ],
        };
        let svg = chart.render();
        assert_eq!(svg.matches("<rect").count(), 3); // background + 2 bars
        assert!(svg.contains("0.620"));
    }

    #[test]
    fn labels_are_xml_escaped() {
        let chart = BarChart {
            title: "a < b & c".into(),
            x_label: "x".into(),
            bars: vec![("p > q".into(), 1.0)],
        };
        let svg = chart.render();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("p &gt; q"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn ticks_are_rounded_and_cover_the_range() {
        let t = ticks(0.0, 1.0, 5);
        assert!(t.contains(&0.0) && t.contains(&1.0), "{t:?}");
        let t = ticks(2.9, 3.4, 5);
        assert!(t.iter().all(|v| (2.8..=3.5).contains(v)), "{t:?}");
        assert!(t.len() >= 3);
    }

    #[test]
    fn flat_series_still_renders() {
        let chart = LineChart {
            title: "flat".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series { name: "s".into(), points: vec![(0.0, 1.0), (1.0, 1.0)] }],
        };
        let svg = chart.render();
        assert!(svg.contains("<path"));
    }

    #[test]
    #[should_panic(expected = "a line chart needs series")]
    fn empty_chart_panics() {
        let _ =
            LineChart { title: "t".into(), x_label: "".into(), y_label: "".into(), series: vec![] }
                .render();
    }
}
