//! # agua-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries that regenerate every
//! table and figure of the paper (see `src/bin/` and DESIGN.md §4):
//! application builders that train controllers, roll them out, run the
//! labelling pipeline, fit Agua surrogates and Trustee baselines, plus
//! small reporting utilities.

#![forbid(unsafe_code)]

pub mod apps;
pub mod plot;
pub mod report;
pub mod runner;
pub mod synth;

pub use apps::{AppData, LlmVariant};
pub use runner::ExperimentRunner;
