//! One harness for every experiment bin: banner, observability,
//! artifact store, result persistence.
//!
//! [`ExperimentRunner`] wires the pieces every `src/bin/` entry point
//! used to assemble by hand — a [`banner`], a [`Metrics`] subscriber,
//! and a [`Store`] rooted at `results/cache/` whose mode follows
//! `AGUA_CACHE` — and finishes the run by saving the result JSON and
//! printing a one-line store summary (`[store] hits=… misses=… writes=…
//! fits=…`) that `ci.sh`'s warm-cache gate greps.
//!
//! The runner is `Sync`: one instance can be shared across `par_jobs`
//! workers (the metrics aggregator and the store memo are both behind
//! mutexes).

use agua_app::{Application, Store};
use agua_engine::{fit_pipeline, FitSpec, FittedPipeline};
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{span_end, span_start, Metrics, Stage, Subscriber};
use serde::Serialize;
use std::sync::Arc;

use crate::report::{banner, results_dir, save_json};

/// Shared spine of an experiment binary.
pub struct ExperimentRunner {
    metrics: Arc<Metrics>,
    store: Store,
    smoke: bool,
}

impl ExperimentRunner {
    /// Prints the banner and wires metrics + store. Smoke mode is
    /// enabled by a `--smoke` CLI argument (see [`ExperimentRunner::size`]).
    pub fn new(id: &str, title: &str) -> Self {
        banner(id, title);
        Self {
            metrics: Arc::new(Metrics::new()),
            store: Store::new(results_dir().join("cache")),
            smoke: std::env::args().any(|a| a == "--smoke"),
        }
    }

    /// The run's metrics aggregator, as the subscriber store calls expect.
    pub fn obs(&self) -> &dyn Subscriber {
        &*self.metrics
    }

    /// The run's metrics aggregator.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// A shared handle to the aggregator, for fanouts and scoped installs.
    pub fn metrics_shared(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// Runs `f` with the run's metrics installed as the ambient scoped
    /// subscriber, so `agua-nn` kernel dispatches are captured too.
    pub fn observe<R>(&self, f: impl FnOnce(&dyn Subscriber) -> R) -> R {
        with_scoped_subscriber(self.metrics.clone(), || f(&*self.metrics))
    }

    /// Runs `f` under a named span (hierarchical: nests under whatever
    /// span is already open on this thread) with the metrics installed
    /// as the ambient scoped subscriber.
    pub fn span<R>(&self, name: &'static str, f: impl FnOnce(&dyn Subscriber) -> R) -> R {
        self.observe(|obs| {
            let span = span_start(obs, Stage::Custom(name));
            let out = f(obs);
            span_end(obs, span);
            out
        })
    }

    /// The content-addressed artifact store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Runs the engine's controller → rollout → surrogate (→ int8 gate)
    /// pipeline through this runner's store and metrics — the one call
    /// that replaces the per-bin `store.controller` / `store.rollout` /
    /// `store.surrogate` trio. The returned [`FittedPipeline`] keeps the
    /// content-keyed stages (and `into_session` turns it into the
    /// checkpoint the daemon serves).
    pub fn fit(&self, app: &'static dyn Application, spec: &FitSpec) -> FittedPipeline {
        fit_pipeline(&self.store, app, spec, &*self.metrics)
    }

    /// True when `--smoke` was passed.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Picks a workload size: `full` normally, `smoke` under `--smoke`.
    pub fn size(&self, full: usize, smoke: usize) -> usize {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Saves the result JSON and prints the store summary line, after
    /// folding the worker pool's utilization counters (busy/parked time,
    /// idle wakeups, ring-drained chunk latencies) into the metrics.
    pub fn finish<T: Serialize>(&self, name: &str, value: &T) {
        let chunk_hist = agua_nn::pool::emit_worker_utilization(&*self.metrics);
        self.metrics.merge_latency_hist("pool.chunk_seconds", &chunk_hist);
        save_json(name, value);
        println!("{}", self.store_summary());
    }

    /// The `[store] hits=… misses=… writes=… fits=…` summary of this
    /// run's artifact traffic. `fits` counts surrogate-fit misses — the
    /// expensive work a warm cache is expected to skip entirely.
    pub fn store_summary(&self) -> String {
        let sched = self.metrics.snapshot().scheduling;
        let sum = |suffix: &str| -> u64 {
            sched
                .iter()
                .filter(|(k, _)| k.starts_with("artifact.") && k.ends_with(suffix))
                .map(|(_, &v)| v)
                .sum()
        };
        let fits = sched.get("artifact.surrogate.misses").copied().unwrap_or(0);
        format!(
            "[store] hits={} misses={} writes={} fits={fits}",
            sum(".hits"),
            sum(".misses"),
            sum(".writes")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agua_obs::{emit, ArtifactHit, ArtifactMiss, ArtifactWrite};

    #[test]
    fn store_summary_aggregates_across_kinds() {
        let runner = ExperimentRunner {
            metrics: Arc::new(Metrics::new()),
            store: Store::with_mode(std::env::temp_dir(), agua_app::CacheMode::Off),
            smoke: true,
        };
        emit(runner.obs(), ArtifactHit { kind: "controller", key: 1 });
        emit(runner.obs(), ArtifactHit { kind: "rollout", key: 2 });
        emit(runner.obs(), ArtifactMiss { kind: "surrogate", key: 3 });
        emit(runner.obs(), ArtifactWrite { kind: "surrogate", key: 3, bytes: 10 });
        assert_eq!(runner.store_summary(), "[store] hits=2 misses=1 writes=1 fits=1");
        assert_eq!(runner.size(100, 5), 5);
    }
}
