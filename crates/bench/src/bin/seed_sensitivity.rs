//! **Seed sensitivity** (extension) — Table 2's fidelity numbers across
//! three independent seeds per application, reported as mean ± std.
//!
//! A reproduction is only as trustworthy as its variance: this experiment
//! quantifies how much the headline numbers move when the controller
//! initialization, rollout traces, and labelling draws all change.

#![forbid(unsafe_code)]

use agua::surrogate::TrainParams;
use agua_app::codec::{f32s_value, object};
use agua_app::{abr_app, Application, LlmVariant, RolloutSpec, ABR, CC, DDOS};
use agua_bench::ExperimentRunner;
use serde_json::Value;

const SEEDS: [u64; 3] = [11, 211, 311];

fn stats(fidelities: &[f32]) -> (f32, f32) {
    let n = fidelities.len() as f32;
    let mean = fidelities.iter().sum::<f32>() / n;
    let var = fidelities.iter().map(|f| (f - mean) * (f - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

/// Runs one fully-seeded experiment per seed on scoped worker threads
/// (each job builds its own controller, rollouts, and surrogate, so the
/// per-seed fidelities are identical to a sequential run, in seed order).
/// The runner is `Sync`, so the workers share one store and one metrics
/// aggregator.
fn per_seed_fidelities(
    runner: &ExperimentRunner,
    app: &'static dyn Application,
    train_samples: usize,
    test_samples: usize,
) -> Vec<f32> {
    agua_nn::parallel::par_jobs(
        SEEDS
            .iter()
            .map(|&seed| {
                move || {
                    let store = runner.store();
                    let ctrl = store.controller(app, seed, runner.obs());
                    let train = store.rollout(
                        app,
                        &ctrl,
                        &RolloutSpec::new(train_samples, seed + 1),
                        runner.obs(),
                    );
                    let test = store.rollout(
                        app,
                        &ctrl,
                        &RolloutSpec::new(test_samples, seed + 2),
                        runner.obs(),
                    );
                    let params = TrainParams { seed, ..TrainParams::tuned() };
                    let (model, _) = store.surrogate(
                        app,
                        LlmVariant::HighQuality,
                        &params,
                        seed ^ 0x42,
                        &train,
                        runner.obs(),
                    );
                    model.fidelity(&test.embeddings, &test.outputs)
                }
            })
            .collect(),
    )
}

fn main() {
    let runner =
        ExperimentRunner::new("Seed sensitivity", "Table 2 fidelity across 3 seeds (mean ± std)");

    let jobs: [(&'static dyn Application, usize, usize); 3] = [
        (&ABR, runner.size(30, 6) * abr_app::CHUNKS, runner.size(30, 6) * abr_app::CHUNKS),
        (&CC, runner.size(2000, 400), runner.size(2000, 400)),
        (&DDOS, runner.size(1000, 200), runner.size(450, 120)),
    ];

    let mut rows = Vec::new();
    for (app, train_samples, test_samples) in jobs {
        println!("\n[{}]…", app.display_name());
        let fidelities = per_seed_fidelities(&runner, app, train_samples, test_samples);
        let (mean, std) = stats(&fidelities);
        rows.push((app.display_name().to_string(), fidelities, mean, std));
    }

    println!("\n{:<8} {:>24} {:>9} {:>8}", "app", "per-seed fidelity", "mean", "std");
    println!("{}", "-".repeat(54));
    for (application, fidelities, mean, std) in &rows {
        let per: Vec<String> = fidelities.iter().map(|f| format!("{f:.3}")).collect();
        println!("{application:<8} {:>24} {mean:>9.3} {std:>8.3}", per.join(" / "));
    }

    let result: Vec<Value> = rows
        .iter()
        .map(|(application, fidelities, mean, std)| {
            object(vec![
                ("application", Value::String(application.clone())),
                ("fidelities", f32s_value(fidelities)),
                ("mean", Value::Number(f64::from(*mean))),
                ("std", Value::Number(f64::from(*std))),
            ])
        })
        .collect();
    runner.finish("seed_sensitivity", &Value::Array(result));
}
