//! **Seed sensitivity** (extension) — Table 2's fidelity numbers across
//! three independent seeds per application, reported as mean ± std.
//!
//! A reproduction is only as trustworthy as its variance: this experiment
//! quantifies how much the headline numbers move when the controller
//! initialization, rollout traces, and labelling draws all change.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts, ConceptSet};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, cc_app, ddos_app, fit_agua, AppData, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_controllers::cc::CcVariant;
use serde::Serialize;

const SEEDS: [u64; 3] = [11, 211, 311];

#[derive(Debug, Serialize)]
struct SensitivityRow {
    application: String,
    fidelities: Vec<f32>,
    mean: f32,
    std: f32,
}

fn stats(fidelities: &[f32]) -> (f32, f32) {
    let n = fidelities.len() as f32;
    let mean = fidelities.iter().sum::<f32>() / n;
    let var = fidelities.iter().map(|f| (f - mean) * (f - mean)).sum::<f32>() / n;
    (mean, var.sqrt())
}

fn agua_fidelity(
    concepts: &ConceptSet,
    n_outputs: usize,
    train: &AppData,
    test: &AppData,
    seed: u64,
) -> f32 {
    let params = TrainParams { seed, ..TrainParams::tuned() };
    let (model, _) =
        fit_agua(concepts, n_outputs, train, LlmVariant::HighQuality, &params, seed ^ 0x42);
    model.fidelity(&test.embeddings, &test.outputs)
}

/// Runs one fully-seeded experiment per seed on scoped worker threads
/// (each job builds its own controller, rollouts, and surrogate, so the
/// per-seed fidelities are identical to a sequential run, in seed order).
fn per_seed_fidelities(run: impl Fn(u64) -> f32 + Sync) -> Vec<f32> {
    let run = &run;
    agua_nn::parallel::par_jobs(SEEDS.iter().map(|&seed| move || run(seed)).collect())
}

fn main() {
    banner("Seed sensitivity", "Table 2 fidelity across 3 seeds (mean ± std)");
    let mut rows = Vec::new();

    println!("\n[ABR]…");
    let abr_f = per_seed_fidelities(|seed| {
        let ctrl = abr_app::build_controller(seed);
        let train = abr_app::rollout(&ctrl, DatasetEra::Train2021, 30, seed + 1);
        let test = abr_app::rollout(&ctrl, DatasetEra::Train2021, 30, seed + 2);
        agua_fidelity(&abr_concepts(), abr_env::LEVELS, &train, &test, seed)
    });
    let (mean, std) = stats(&abr_f);
    rows.push(SensitivityRow { application: "ABR".into(), fidelities: abr_f, mean, std });

    println!("[CC]…");
    let cc_f = per_seed_fidelities(|seed| {
        let ctrl = cc_app::build_controller(CcVariant::Original, seed);
        let train = cc_app::rollout(&ctrl, CcVariant::Original, 2000, seed + 1);
        let test = cc_app::rollout(&ctrl, CcVariant::Original, 2000, seed + 2);
        agua_fidelity(&cc_concepts(), cc_env::ACTIONS, &train, &test, seed)
    });
    let (mean, std) = stats(&cc_f);
    rows.push(SensitivityRow { application: "CC".into(), fidelities: cc_f, mean, std });

    println!("[DDoS]…");
    let ddos_f = per_seed_fidelities(|seed| {
        let ctrl = ddos_app::build_controller(seed);
        let train = ddos_app::rollout(&ctrl, 1000, seed + 1);
        let test = ddos_app::rollout(&ctrl, 450, seed + 2);
        agua_fidelity(&ddos_concepts(), 2, &train, &test, seed)
    });
    let (mean, std) = stats(&ddos_f);
    rows.push(SensitivityRow { application: "DDoS".into(), fidelities: ddos_f, mean, std });

    println!("\n{:<8} {:>24} {:>9} {:>8}", "app", "per-seed fidelity", "mean", "std");
    println!("{}", "-".repeat(54));
    for r in &rows {
        let per: Vec<String> = r.fidelities.iter().map(|f| format!("{f:.3}")).collect();
        println!("{:<8} {:>24} {:>9.3} {:>8.3}", r.application, per.join(" / "), r.mean, r.std);
    }

    save_json("seed_sensitivity", &rows);
}
