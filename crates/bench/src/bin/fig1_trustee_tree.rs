//! **Figure 1** — Trustee's explanation for the motivating ABR state.
//!
//! Distills the ABR controller into a decision tree and reports (a) the
//! full-tree complexity, (b) the pruned-tree complexity, and (c) the
//! decision path for the motivating state: a recovering buffer under
//! degraded throughput where the controller still picks a low bitrate.
//!
//! Paper shape: full tree 195 nodes / depth 13; pruned 61 nodes /
//! depth 10; the pruned decision path still spans ~7 feature tests.

#![forbid(unsafe_code)]

use agua_app::codec::object;
use agua_app::{abr_app, Application, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use serde_json::Value;
use trustee::{TreeConfig, TrusteeReport};

fn main() {
    let runner = ExperimentRunner::new(
        "Figure 1",
        "Trustee's tree complexity and decision-path explanation",
    );
    let store = runner.store();

    println!("\ntraining controller and distilling the Trustee surrogate…");
    let controller = store.controller(&ABR, 11, runner.obs());
    let n_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let train =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 12), runner.obs());
    let test =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 13), runner.obs());

    let report = TrusteeReport::distill(
        &train.features,
        &train.outputs,
        &test.features,
        &test.outputs,
        ABR.n_outputs(),
        TreeConfig::default(),
        32,
        ABR.feature_names(),
    );

    println!("\n(a/b) Surrogate tree complexity:");
    println!(
        "  full   : {:>4} nodes, depth {:>2}, fidelity {:.3}",
        report.full.node_count(),
        report.full.depth(),
        report.full_fidelity
    );
    println!(
        "  pruned : {:>4} nodes, depth {:>2}, fidelity {:.3}",
        report.pruned.node_count(),
        report.pruned.depth(),
        report.pruned_fidelity
    );
    println!("  (paper: full 195 nodes / depth 13; pruned 61 nodes / depth 10)");

    println!("\n  top features by Gini importance (full tree):");
    for (name, imp) in report.top_features(5) {
        println!("    {name:<24} {imp:.3}");
    }

    let obs = abr_app::motivating_observation();
    let x = obs.features();
    let path = report.decision_path(&x);
    println!("\n(c) Decision path for the motivating state (pruned tree):");
    for (i, step) in path.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, step.render());
    }
    println!(
        "  → predicted level {} — a path of {} low-level feature tests the \
         operator must interpret by hand.",
        report.pruned.predict(&x),
        path.len()
    );

    runner.finish(
        "fig1_trustee_tree",
        &object(vec![
            ("full_depth", Value::Number(report.full.depth() as f64)),
            ("full_fidelity", Value::Number(f64::from(report.full_fidelity))),
            ("full_nodes", Value::Number(report.full.node_count() as f64)),
            (
                "motivating_path",
                Value::Array(path.iter().map(|s| Value::String(s.render())).collect()),
            ),
            ("motivating_path_len", Value::Number(path.len() as f64)),
            ("pruned_depth", Value::Number(report.pruned.depth() as f64)),
            ("pruned_fidelity", Value::Number(f64::from(report.pruned_fidelity))),
            ("pruned_nodes", Value::Number(report.pruned.node_count() as f64)),
        ]),
    );
}
