//! **Figure 1** — Trustee's explanation for the motivating ABR state.
//!
//! Distills the ABR controller into a decision tree and reports (a) the
//! full-tree complexity, (b) the pruned-tree complexity, and (c) the
//! decision path for the motivating state: a recovering buffer under
//! degraded throughput where the controller still picks a low bitrate.
//!
//! Paper shape: full tree 195 nodes / depth 13; pruned 61 nodes /
//! depth 10; the pruned decision path still spans ~7 feature tests.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua_bench::apps::abr_app;
use agua_bench::report::{banner, save_json};
use serde::Serialize;
use trustee::{TreeConfig, TrusteeReport};

#[derive(Debug, Serialize)]
struct TreeComplexity {
    full_nodes: usize,
    full_depth: usize,
    full_fidelity: f32,
    pruned_nodes: usize,
    pruned_depth: usize,
    pruned_fidelity: f32,
    motivating_path_len: usize,
    motivating_path: Vec<String>,
}

fn main() {
    banner("Figure 1", "Trustee's tree complexity and decision-path explanation");

    println!("\ntraining controller and distilling the Trustee surrogate…");
    let controller = abr_app::build_controller(11);
    let train = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 12);
    let test = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 13);

    let report = TrusteeReport::distill(
        &train.features,
        &train.outputs,
        &test.features,
        &test.outputs,
        abr_env::LEVELS,
        TreeConfig::default(),
        32,
        abr_app::feature_names(),
    );

    println!("\n(a/b) Surrogate tree complexity:");
    println!(
        "  full   : {:>4} nodes, depth {:>2}, fidelity {:.3}",
        report.full.node_count(),
        report.full.depth(),
        report.full_fidelity
    );
    println!(
        "  pruned : {:>4} nodes, depth {:>2}, fidelity {:.3}",
        report.pruned.node_count(),
        report.pruned.depth(),
        report.pruned_fidelity
    );
    println!("  (paper: full 195 nodes / depth 13; pruned 61 nodes / depth 10)");

    println!("\n  top features by Gini importance (full tree):");
    for (name, imp) in report.top_features(5) {
        println!("    {name:<24} {imp:.3}");
    }

    let obs = abr_app::motivating_observation();
    let x = obs.features();
    let path = report.decision_path(&x);
    println!("\n(c) Decision path for the motivating state (pruned tree):");
    for (i, step) in path.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, step.render());
    }
    println!(
        "  → predicted level {} — a path of {} low-level feature tests the \
         operator must interpret by hand.",
        report.pruned.predict(&x),
        path.len()
    );

    save_json(
        "fig1_trustee_tree",
        &TreeComplexity {
            full_nodes: report.full.node_count(),
            full_depth: report.full.depth(),
            full_fidelity: report.full_fidelity,
            pruned_nodes: report.pruned.node_count(),
            pruned_depth: report.pruned.depth(),
            pruned_fidelity: report.pruned_fidelity,
            motivating_path_len: path.len(),
            motivating_path: path.iter().map(|s| s.render()).collect(),
        },
    );
}
