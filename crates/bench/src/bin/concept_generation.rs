//! **Concept generation** (paper §3.2, Fig. 2 stage ①) — derive a
//! starting concept set from a survey corpus, filter it with the `S_max`
//! similarity check, and compare its fidelity against the curated
//! Table 1 set.
//!
//! The paper's workflow: LLM + survey paper → starting set → operator
//! curation. Expected shape: the generated set already reaches useful
//! fidelity (it names the right phenomena), the curated set reaches
//! higher — quantifying why §3.2 keeps the operator in the loop.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::abr_concepts;
use agua::congen::{abr_survey, cc_survey, ddos_survey, generate_concepts, GenerationConfig};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct GenerationResult {
    generated_names: Vec<String>,
    generated_fidelity: f32,
    curated_fidelity: f32,
}

fn main() {
    banner("Concept generation", "Survey-mined starting sets vs the curated Table 1 set");

    let variant = LlmVariant::HighQuality;
    let embedder = variant.embedder();
    let config = GenerationConfig::default();

    println!("\nGenerated starting sets (after S_max = {} filtering):", config.s_max);
    for (domain, corpus) in [("ABR", abr_survey()), ("CC", cc_survey()), ("DDoS", ddos_survey())] {
        let set = generate_concepts(&corpus, &embedder, config);
        println!("  {domain} ({} concepts from {} sentences):", set.len(), corpus.len());
        for c in &set.concepts {
            println!("    - {}", c.name);
        }
    }

    // Fidelity comparison on ABR.
    println!("\ntraining the ABR controller and comparing fidelity…");
    let controller = abr_app::build_controller(11);
    let train = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 12);
    let test = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 13);

    let generated = generate_concepts(&abr_survey(), &embedder, config);
    let (gen_model, _) =
        fit_agua(&generated, abr_env::LEVELS, &train, variant, &TrainParams::tuned(), 42);
    let gen_fid = gen_model.fidelity(&test.embeddings, &test.outputs);

    let curated = abr_concepts();
    let (cur_model, _) =
        fit_agua(&curated, abr_env::LEVELS, &train, variant, &TrainParams::tuned(), 42);
    let cur_fid = cur_model.fidelity(&test.embeddings, &test.outputs);

    println!("\n{:<34} {:>9} {:>10}", "concept set", "concepts", "fidelity");
    println!("{}", "-".repeat(56));
    println!("{:<34} {:>9} {:>10.3}", "survey-generated (stage ① only)", generated.len(), gen_fid);
    println!("{:<34} {:>9} {:>10.3}", "curated (Table 1a)", curated.len(), cur_fid);
    println!(
        "\nPaper shape: the starting set is informative but benefits from \
         operator curation (§3.2: \"this starting set may not meet all\" \
         four criteria)."
    );

    save_json(
        "concept_generation",
        &GenerationResult {
            generated_names: generated.names(),
            generated_fidelity: gen_fid,
            curated_fidelity: cur_fid,
        },
    );
}
