//! **Concept generation** (paper §3.2, Fig. 2 stage ①) — derive a
//! starting concept set from a survey corpus, filter it with the `S_max`
//! similarity check, and compare its fidelity against the curated
//! Table 1 set.
//!
//! The paper's workflow: LLM + survey paper → starting set → operator
//! curation. Expected shape: the generated set already reaches useful
//! fidelity (it names the right phenomena), the curated set reaches
//! higher — quantifying why §3.2 keeps the operator in the loop.

#![forbid(unsafe_code)]

use agua::congen::{abr_survey, cc_survey, ddos_survey, generate_concepts, GenerationConfig};
use agua::surrogate::TrainParams;
use agua_app::codec::object;
use agua_app::{abr_app, fit_agua, Application, LlmVariant, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use serde_json::Value;

fn main() {
    let runner = ExperimentRunner::new(
        "Concept generation",
        "Survey-mined starting sets vs the curated Table 1 set",
    );
    let store = runner.store();

    let variant = LlmVariant::HighQuality;
    let embedder = variant.embedder();
    let config = GenerationConfig::default();

    println!("\nGenerated starting sets (after S_max = {} filtering):", config.s_max);
    for (domain, corpus) in [("ABR", abr_survey()), ("CC", cc_survey()), ("DDoS", ddos_survey())] {
        let set = generate_concepts(&corpus, &embedder, config);
        println!("  {domain} ({} concepts from {} sentences):", set.len(), corpus.len());
        for c in &set.concepts {
            println!("    - {}", c.name);
        }
    }

    // Fidelity comparison on ABR.
    println!("\ntraining the ABR controller and comparing fidelity…");
    let controller = store.controller(&ABR, 11, runner.obs());
    let n_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let train =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 12), runner.obs());
    let test =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 13), runner.obs());

    // The generated set is not the app's registered concept space, so it
    // fits directly rather than through the surrogate cache.
    let generated = generate_concepts(&abr_survey(), &embedder, config);
    let (gen_model, _) =
        fit_agua(&generated, ABR.n_outputs(), &train, variant, &TrainParams::tuned(), 42);
    let gen_fid = gen_model.fidelity(&test.embeddings, &test.outputs);

    let curated = ABR.concepts();
    let (cur_model, _) =
        fit_agua(&curated, ABR.n_outputs(), &train, variant, &TrainParams::tuned(), 42);
    let cur_fid = cur_model.fidelity(&test.embeddings, &test.outputs);

    println!("\n{:<34} {:>9} {:>10}", "concept set", "concepts", "fidelity");
    println!("{}", "-".repeat(56));
    println!("{:<34} {:>9} {:>10.3}", "survey-generated (stage ① only)", generated.len(), gen_fid);
    println!("{:<34} {:>9} {:>10.3}", "curated (Table 1a)", curated.len(), cur_fid);
    println!(
        "\nPaper shape: the starting set is informative but benefits from \
         operator curation (§3.2: \"this starting set may not meet all\" \
         four criteria)."
    );

    runner.finish(
        "concept_generation",
        &object(vec![
            ("curated_fidelity", Value::Number(f64::from(cur_fid))),
            (
                "generated_names",
                Value::Array(generated.names().into_iter().map(Value::String).collect()),
            ),
            ("generated_fidelity", Value::Number(f64::from(gen_fid))),
        ]),
    );
}
