//! **Figure 14 (Appendix A.2)** — Validating LLM descriptions against
//! human annotations.
//!
//! 16 ABR controller inputs covering the output space are described both
//! by the "LLM" (high-quality describer) and by a "human annotator"
//! (low-misread, high-wording-variance describer). Both descriptions are
//! embedded, concept similarity vectors are computed, and the pairwise
//! cosine distances between the two in concept space are reported.
//!
//! Paper shape: >80% of samples differ by < 0.06 in cosine distance, and
//! top-5 concept recall exceeds 0.72.

#![forbid(unsafe_code)]

use agua::robustness::recall_at_k;
use agua_app::codec::{f32s_value, object};
use agua_app::{abr_app, labeler_for, Application, LlmVariant, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use agua_text::describer::{Describer, DescriberConfig};
use serde_json::Value;

fn main() {
    let runner =
        ExperimentRunner::new("Figure 14", "Semantic similarity of LLM vs human descriptions");
    let store = runner.store();

    println!("\ncollecting 16 inputs covering the output space…");
    let controller = store.controller(&ABR, 11, runner.obs());
    let pool =
        store.rollout(&ABR, &controller, &RolloutSpec::new(12 * abr_app::CHUNKS, 61), runner.obs());

    // Pick 16 samples spread over the controller's chosen levels.
    let mut chosen: Vec<usize> = Vec::new();
    'outer: for round in 0.. {
        for level in 0..ABR.n_outputs() {
            if let Some(idx) = pool
                .outputs
                .iter()
                .enumerate()
                .filter(|(i, &y)| y == level && !chosen.contains(i))
                .map(|(i, _)| i)
                .nth(round)
            {
                chosen.push(idx);
                if chosen.len() == 16 {
                    break 'outer;
                }
            }
        }
        if round > 40 {
            break;
        }
    }
    while chosen.len() < 16 {
        chosen.push(chosen.len());
    }

    let labeler = labeler_for(&ABR.concepts(), LlmVariant::HighQuality);
    let human = Describer::new(DescriberConfig::human());

    let mut distances = Vec::new();
    let mut recalls = Vec::new();
    for (i, &idx) in chosen.iter().enumerate() {
        let sections = &pool.sections[idx];
        let llm_description = labeler.describe(sections, 4000 + i as u64);
        let human_description = human.describe_seeded(sections, 5000 + i as u64);
        let llm_sims = labeler.similarities(&llm_description);
        let human_sims = labeler.similarities(&human_description);

        // Cosine distance between the two *concept-similarity vectors*.
        let dot: f32 = llm_sims.iter().zip(&human_sims).map(|(a, b)| a * b).sum();
        let na: f32 = llm_sims.iter().map(|v| v * v).sum::<f32>().sqrt();
        let nb: f32 = human_sims.iter().map(|v| v * v).sum::<f32>().sqrt();
        let distance = 1.0 - (dot / (na * nb).max(1e-9)).clamp(0.0, 1.0);
        distances.push(distance);
        recalls.push(recall_at_k(&human_sims, &llm_sims, 5));
    }

    distances.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let below = distances.iter().filter(|&&d| d < 0.06).count() as f32 / distances.len() as f32;
    let mean_recall = recalls.iter().sum::<f32>() / recalls.len() as f32;

    println!("\npairwise concept-space distances (sorted):");
    for chunk in distances.chunks(8) {
        println!("  {}", chunk.iter().map(|d| format!("{d:.4}")).collect::<Vec<_>>().join("  "));
    }
    println!("\nfraction below 0.06: {below:.2} (paper: > 0.80)");
    println!("mean top-5 concept recall vs human: {mean_recall:.3} (paper: > 0.72)");

    runner.finish(
        "fig14_description_validation",
        &object(vec![
            ("distances", f32s_value(&distances)),
            ("frac_below_006", Value::Number(f64::from(below))),
            ("mean_top5_recall", Value::Number(f64::from(mean_recall))),
        ]),
    );
}
