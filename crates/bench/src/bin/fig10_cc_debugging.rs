//! **Figure 10** — Debugging Aurora with Agua.
//!
//! Agua's Fig. 9 explanations reveal that the controller keeps perceiving
//! 'Rapidly Increasing Latency' on a *stable* link — a distorted latency
//! perception. The fix (paper §5.2.3): add an average-latency feature,
//! extend the history 10 → 15, and retrain with a gentler schedule.
//!
//! Paper shape: the corrected controller (red) holds steady near full
//! link capacity; the original (blue) oscillates.

#![forbid(unsafe_code)]

use agua::explain::{batched, concept_intensities, majority_class};
use agua_app::codec::object;
use agua_app::{RolloutSpec, CC, CC_DEBUGGED};
use agua_bench::report::sparkline;
use agua_bench::ExperimentRunner;
use agua_controllers::cc::{rollout_throughput, utilization_stats};
use agua_engine::FitSpec;
use cc_env::LinkPattern;
use serde_json::Value;

fn main() {
    let runner =
        ExperimentRunner::new("Figure 10", "Debugging Aurora: original vs corrected controller");
    let store = runner.store();

    let pattern = LinkPattern::Stable { mbps: 8.0 };

    // Step 1 — diagnose: explain the original controller on the stable link.
    println!("\ntraining the original (buggy) controller…");
    let spec = FitSpec {
        controller_seed: 21,
        rollout: RolloutSpec::new(runner.size(2000, 400), 22),
        ..FitSpec::standard(0)
    };
    let fitted = runner.fit(&CC, &spec);
    let original = &fitted.controller;
    let model = &fitted.model;
    // Explain the states the controller visits on the stable link where
    // it should NOT be reacting.
    let mut sim = cc_env::CcSimulator::with_history(
        cc_env::CapacityProcess::generate_seeded(pattern, 600, 55),
        cc_env::LinkConfig::default(),
        4.0,
        CC.variant().history(),
    );
    for _ in 0..CC.variant().history() {
        sim.step_at_current_rate();
    }
    let mut rows = Vec::new();
    let mut cut_rows = Vec::new();
    let mut cut_actions = [0usize; cc_env::ACTIONS];
    while !sim.done() {
        let f = sim.observation().features(false);
        let a = original.act(&f);
        if a < agua_controllers::cc::HOLD {
            cut_rows.push(f.clone());
            cut_actions[a] += 1;
        }
        rows.push(f);
        sim.step(a);
    }
    let all_embeddings = original.embeddings(&agua_nn::Matrix::from_rows(&rows));
    let cut_embeddings = original.embeddings(&agua_nn::Matrix::from_rows(&cut_rows));
    println!(
        "\nthe controller cut its rate in {} of {} MIs on a STABLE link",
        cut_rows.len(),
        rows.len()
    );

    // Diagnosis 1 — what distinguishes the cut moments from the
    // rollout baseline, at the concept level?
    let base_int = concept_intensities(model, &all_embeddings);
    let cut_int = concept_intensities(model, &cut_embeddings);
    let mut deltas: Vec<(String, f32)> = model
        .concept_names
        .iter()
        .cloned()
        .zip(cut_int.iter().zip(&base_int).map(|(c, b)| c - b))
        .collect();
    deltas.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nAgua's diagnosis — concepts elevated at the cut moments:");
    for (name, d) in deltas.iter().take(3) {
        println!("  {:<40} {:+.4}", name, d);
    }

    // Diagnosis 2 — the batched explanation for the cut decisions.
    let cut_class = majority_class(model, &cut_embeddings);
    let diag = batched(model, &cut_embeddings, cut_class);
    println!("\nbatched explanation of the cut decisions (class {cut_class}):");
    for c in diag.contributions.iter().take(3) {
        println!("  {:<40} {:.4}", c.concept, c.weight);
    }
    println!(
        "  → the controller keeps perceiving transient latency/loss \
         congestion signals on a stable link: distorted latency perception."
    );

    // Step 2 — fix: longer history + average-latency feature, retrain.
    println!("\ntraining the debugged controller (history 15, +avg-latency)…");
    let debugged = store.controller(&CC_DEBUGGED, 21, runner.obs());

    // Step 3 — compare on the stable link.
    let orig_series = rollout_throughput(original, CC.variant(), pattern, 600, 9);
    let fixed_series = rollout_throughput(&debugged, CC_DEBUGGED.variant(), pattern, 600, 9);
    let settle = 150; // skip the ramp-up
    let (orig_util, orig_cv) = utilization_stats(&orig_series[settle..]);
    let (fixed_util, fixed_cv) = utilization_stats(&fixed_series[settle..]);

    let orig_t: Vec<f32> = orig_series.iter().map(|(d, _)| *d).collect();
    let fixed_t: Vec<f32> = fixed_series.iter().map(|(d, _)| *d).collect();
    println!("\noriginal  : {}", sparkline(&orig_t[settle..]));
    println!("corrected : {}", sparkline(&fixed_t[settle..]));
    println!("\n{:<12} {:>12} {:>18}", "controller", "utilization", "throughput CV");
    println!("{}", "-".repeat(44));
    println!("{:<12} {:>12.3} {:>18.3}", "original", orig_util, orig_cv);
    println!("{:<12} {:>12.3} {:>18.3}", "corrected", fixed_util, fixed_cv);
    println!("\nPaper shape: corrected steady near capacity; original oscillates.");

    runner.finish(
        "fig10_cc_debugging",
        &object(vec![
            ("debugged_cv", Value::Number(f64::from(fixed_cv))),
            ("debugged_utilization", Value::Number(f64::from(fixed_util))),
            (
                "diagnosis_top_concepts",
                Value::Array(
                    deltas.iter().take(4).map(|(n, _)| Value::String(n.clone())).collect(),
                ),
            ),
            ("original_cv", Value::Number(f64::from(orig_cv))),
            ("original_utilization", Value::Number(f64::from(orig_util))),
        ]),
    );
}
