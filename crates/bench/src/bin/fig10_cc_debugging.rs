//! **Figure 10** — Debugging Aurora with Agua.
//!
//! Agua's Fig. 9 explanations reveal that the controller keeps perceiving
//! 'Rapidly Increasing Latency' on a *stable* link — a distorted latency
//! perception. The fix (paper §5.2.3): add an average-latency feature,
//! extend the history 10 → 15, and retrain with a gentler schedule.
//!
//! Paper shape: the corrected controller (red) holds steady near full
//! link capacity; the original (blue) oscillates.

#![forbid(unsafe_code)]

use agua::concepts::cc_concepts;
use agua::explain::{batched, concept_intensities, majority_class};
use agua::surrogate::TrainParams;
use agua_bench::apps::{cc_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json, sparkline};
use agua_controllers::cc::{rollout_throughput, utilization_stats, CcVariant};
use cc_env::LinkPattern;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig10Result {
    original_utilization: f32,
    original_cv: f32,
    debugged_utilization: f32,
    debugged_cv: f32,
    diagnosis_top_concepts: Vec<String>,
}

fn main() {
    banner("Figure 10", "Debugging Aurora: original vs corrected controller");

    let pattern = LinkPattern::Stable { mbps: 8.0 };

    // Step 1 — diagnose: explain the original controller on the stable link.
    println!("\ntraining the original (buggy) controller…");
    let original = cc_app::build_controller(CcVariant::Original, 21);
    let train = cc_app::rollout(&original, CcVariant::Original, 2000, 22);
    let concepts = cc_concepts();
    let (model, _) = fit_agua(
        &concepts,
        cc_env::ACTIONS,
        &train,
        LlmVariant::HighQuality,
        &TrainParams::tuned(),
        42,
    );
    // Explain the states the controller visits on the stable link where
    // it should NOT be reacting.
    let mut sim = cc_env::CcSimulator::with_history(
        cc_env::CapacityProcess::generate_seeded(pattern, 600, 55),
        cc_env::LinkConfig::default(),
        4.0,
        CcVariant::Original.history(),
    );
    for _ in 0..CcVariant::Original.history() {
        sim.step_at_current_rate();
    }
    let mut rows = Vec::new();
    let mut cut_rows = Vec::new();
    let mut cut_actions = [0usize; cc_env::ACTIONS];
    while !sim.done() {
        let f = sim.observation().features(false);
        let a = original.act(&f);
        if a < agua_controllers::cc::HOLD {
            cut_rows.push(f.clone());
            cut_actions[a] += 1;
        }
        rows.push(f);
        sim.step(a);
    }
    let all_embeddings = original.embeddings(&agua_nn::Matrix::from_rows(&rows));
    let cut_embeddings = original.embeddings(&agua_nn::Matrix::from_rows(&cut_rows));
    println!(
        "\nthe controller cut its rate in {} of {} MIs on a STABLE link",
        cut_rows.len(),
        rows.len()
    );

    // Diagnosis 1 — what distinguishes the cut moments from the
    // rollout baseline, at the concept level?
    let base_int = concept_intensities(&model, &all_embeddings);
    let cut_int = concept_intensities(&model, &cut_embeddings);
    let mut deltas: Vec<(String, f32)> = model
        .concept_names
        .iter()
        .cloned()
        .zip(cut_int.iter().zip(&base_int).map(|(c, b)| c - b))
        .collect();
    deltas.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nAgua's diagnosis — concepts elevated at the cut moments:");
    for (name, d) in deltas.iter().take(3) {
        println!("  {:<40} {:+.4}", name, d);
    }

    // Diagnosis 2 — the batched explanation for the cut decisions.
    let cut_class = majority_class(&model, &cut_embeddings);
    let diag = batched(&model, &cut_embeddings, cut_class);
    println!("\nbatched explanation of the cut decisions (class {cut_class}):");
    for c in diag.contributions.iter().take(3) {
        println!("  {:<40} {:.4}", c.concept, c.weight);
    }
    println!(
        "  → the controller keeps perceiving transient latency/loss \
         congestion signals on a stable link: distorted latency perception."
    );

    // Step 2 — fix: longer history + average-latency feature, retrain.
    println!("\ntraining the debugged controller (history 15, +avg-latency)…");
    let debugged = cc_app::build_controller(CcVariant::Debugged, 21);

    // Step 3 — compare on the stable link.
    let orig_series = rollout_throughput(&original, CcVariant::Original, pattern, 600, 9);
    let fixed_series = rollout_throughput(&debugged, CcVariant::Debugged, pattern, 600, 9);
    let settle = 150; // skip the ramp-up
    let (orig_util, orig_cv) = utilization_stats(&orig_series[settle..]);
    let (fixed_util, fixed_cv) = utilization_stats(&fixed_series[settle..]);

    let orig_t: Vec<f32> = orig_series.iter().map(|(d, _)| *d).collect();
    let fixed_t: Vec<f32> = fixed_series.iter().map(|(d, _)| *d).collect();
    println!("\noriginal  : {}", sparkline(&orig_t[settle..]));
    println!("corrected : {}", sparkline(&fixed_t[settle..]));
    println!("\n{:<12} {:>12} {:>18}", "controller", "utilization", "throughput CV");
    println!("{}", "-".repeat(44));
    println!("{:<12} {:>12.3} {:>18.3}", "original", orig_util, orig_cv);
    println!("{:<12} {:>12.3} {:>18.3}", "corrected", fixed_util, fixed_cv);
    println!("\nPaper shape: corrected steady near capacity; original oscillates.");

    save_json(
        "fig10_cc_debugging",
        &Fig10Result {
            original_utilization: orig_util,
            original_cv: orig_cv,
            debugged_utilization: fixed_util,
            debugged_cv: fixed_cv,
            diagnosis_top_concepts: deltas.iter().take(4).map(|(n, _)| n.clone()).collect(),
        },
    );
}
