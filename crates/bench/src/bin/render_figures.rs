//! **render_figures** — turns the persisted `results/*.json` experiment
//! outputs into standalone SVG figures under `results/figures/`.
//!
//! Run the experiment binaries first (they write the JSONs), then:
//!
//! ```text
//! cargo run --release -p agua-bench --bin render_figures
//! ```

#![forbid(unsafe_code)]

use agua_bench::plot::{BarChart, LineChart, Series};
use agua_bench::report::results_dir;
use agua_bench::runner::ExperimentRunner;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use serde_json::Value;
use std::fs;

/// What the run produced, persisted as `results/render_figures.json` so
/// a pipeline driver can tell a partial render from a complete one.
struct RenderSummary {
    rendered: usize,
    skipped: Vec<String>,
}

impl Serialize for RenderSummary {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("RenderSummary", 2)?;
        s.serialize_field("rendered", &self.rendered)?;
        s.serialize_field("skipped", &self.skipped)?;
        s.end()
    }
}

fn load(name: &str) -> Option<Value> {
    let path = results_dir().join(format!("{name}.json"));
    let text = fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_svg(name: &str, svg: String) {
    let dir = results_dir().join("figures");
    fs::create_dir_all(&dir).expect("create figures dir");
    let path = dir.join(format!("{name}.svg"));
    fs::write(&path, svg).expect("write svg");
    println!("  wrote {}", path.display());
}

fn f32_of(v: &Value) -> f32 {
    v.as_f64().unwrap_or(0.0) as f32
}

fn table2(v: &Value) -> Option<()> {
    let rows = v.as_array()?;
    let mut bars = Vec::new();
    for row in rows {
        let app = row.get("application")?.as_str()?;
        bars.push((format!("{app} — Trustee (full)"), f32_of(row.get("trustee_full")?)));
        bars.push((format!("{app} — Agua (GPT-class)"), f32_of(row.get("agua_high_quality")?)));
    }
    write_svg(
        "table2_fidelity",
        BarChart {
            title: "Table 2 — fidelity: Agua vs Trustee".into(),
            x_label: "fidelity".into(),
            bars,
        }
        .render(),
    );
    Some(())
}

fn explanation_bars(v: &Value, key: &str, title: &str, out: &str) -> Option<()> {
    let items = v.get(key)?.as_array()?;
    let bars: Vec<(String, f32)> = items
        .iter()
        .filter_map(|pair| {
            let arr = pair.as_array()?;
            Some((arr[0].as_str()?.to_string(), f32_of(&arr[1])))
        })
        .collect();
    write_svg(
        out,
        BarChart { title: title.into(), x_label: "concept weight".into(), bars }.render(),
    );
    Some(())
}

fn cdf_chart(v: &Value) -> Option<()> {
    let series = ["cdf_2021", "cdf_2024"]
        .iter()
        .filter_map(|key| {
            let pts = v.get(key)?.as_array()?;
            Some(Series {
                name: key.replace("cdf_", ""),
                points: pts
                    .iter()
                    .filter_map(|p| {
                        let a = p.as_array()?;
                        Some((f32_of(&a[0]), f32_of(&a[1])))
                    })
                    .collect(),
            })
        })
        .collect::<Vec<_>>();
    write_svg(
        "fig7_throughput_drift",
        LineChart {
            title: "Fig. 7 — throughput CDF drift, 2021 vs 2024".into(),
            x_label: "per-trace mean throughput (Mbps)".into(),
            y_label: "CDF".into(),
            series,
        }
        .render(),
    );
    Some(())
}

fn retraining_chart(v: &Value) -> Option<()> {
    let curve = |key: &str| -> Option<Vec<(f32, f32)>> {
        Some(
            v.get(key)?
                .as_array()?
                .iter()
                .enumerate()
                .map(|(i, y)| (i as f32, f32_of(y)))
                .collect(),
        )
    };
    write_svg(
        "fig8_retraining",
        LineChart {
            title: "Fig. 8 — concept-driven vs traditional retraining".into(),
            x_label: "policy-gradient iteration".into(),
            y_label: "QoE (all 2024 traces)".into(),
            series: vec![
                Series { name: "concept-driven".into(), points: curve("concept_curve_all")? },
                Series { name: "traditional".into(), points: curve("traditional_curve_all")? },
            ],
        }
        .render(),
    );
    Some(())
}

fn concept_size_chart(v: &Value) -> Option<()> {
    let pts: Vec<(f32, f32)> = v
        .get("points")?
        .as_array()?
        .iter()
        .filter_map(|p| Some((f32_of(p.get("concepts")?), f32_of(p.get("fidelity")?))))
        .collect();
    let baseline = f32_of(v.get("baseline")?);
    let base_series = Series {
        name: "majority baseline".into(),
        points: vec![(pts.first()?.0, baseline), (pts.last()?.0, baseline)],
    };
    write_svg(
        "fig13_concept_size",
        LineChart {
            title: "Fig. 13 — fidelity vs concept-space size (ABR)".into(),
            x_label: "number of concepts".into(),
            y_label: "fidelity".into(),
            series: vec![Series { name: "Agua".into(), points: pts }, base_series],
        }
        .render(),
    );
    Some(())
}

fn robustness_chart(v: &Value) -> Option<()> {
    let rows = v.as_array()?;
    let mut bars = Vec::new();
    for row in rows {
        let app = row.get("application")?.as_str()?;
        bars.push((format!("{app} — multi-query"), f32_of(row.get("multi_query_recall")?)));
        bars.push((format!("{app} — input noise"), f32_of(row.get("input_noise_recall")?)));
        bars.push((format!("{app} — explainer noise"), f32_of(row.get("explainer_noise_recall")?)));
    }
    write_svg(
        "fig12_robustness",
        BarChart {
            title: "Fig. 12 — robustness (recall@5)".into(),
            x_label: "recall".into(),
            bars,
        }
        .render(),
    );
    Some(())
}

fn expansion_chart(v: &Value) -> Option<()> {
    let rows = v.as_array()?;
    let bars: Vec<(String, f32)> = rows
        .iter()
        .filter_map(|r| {
            Some((r.get("workload")?.as_str()?.to_string(), f32_of(r.get("ks_statistic")?)))
        })
        .collect();
    write_svg(
        "fig11_dataset_expansion",
        BarChart {
            title: "Fig. 11 — dataset expansion (KS statistic, lower is better)".into(),
            x_label: "KS statistic".into(),
            bars,
        }
        .render(),
    );
    Some(())
}

fn main() {
    let runner = ExperimentRunner::new("render_figures", "results/*.json → results/figures/*.svg");
    println!("rendering figures from results/*.json…");
    let mut rendered = 0;
    let mut skipped = Vec::new();

    // Each figure set renders under its own span, so `--obs`-style
    // tooling (and the persisted snapshot) shows where render time went.
    let mut run = |name: &'static str, f: &dyn Fn(&Value) -> Option<()>| match load(name) {
        Some(v) => {
            let ok = runner.span(name, |_| f(&v).is_some());
            if ok {
                rendered += 1;
            } else {
                skipped.push(format!("{name} (unexpected JSON shape)"));
            }
        }
        None => skipped.push(format!("{name} (missing — run its experiment binary first)")),
    };

    run("table2_fidelity", &table2);
    run("fig4_abr_explanations", &|v| {
        explanation_bars(
            v,
            "factual_top",
            "Fig. 4a — factual explanation, motivating ABR state",
            "fig4a_factual",
        )?;
        explanation_bars(
            v,
            "counterfactual_top",
            "Fig. 4b — counterfactual explanation (medium bitrate)",
            "fig4b_counterfactual",
        )
    });
    run("fig6_ddos_explanations", &|v| {
        explanation_bars(v, "benign_top", "Fig. 6a — benign flows", "fig6a_benign")?;
        explanation_bars(v, "syn_top", "Fig. 6b — TCP SYN flood flows", "fig6b_synflood")
    });
    run("fig7_throughput_drift", &cdf_chart);
    run("fig8_retraining", &retraining_chart);
    run("fig11_dataset_expansion", &expansion_chart);
    run("fig12_robustness", &robustness_chart);
    run("fig13_concept_size", &concept_size_chart);

    println!("rendered {rendered} figure sets");
    if !skipped.is_empty() {
        println!("skipped: {skipped:?}");
    }
    runner.finish("render_figures", &RenderSummary { rendered, skipped });
}
