//! **Figure 12** — Robustness of Agua's pipeline to noise.
//!
//! (a) Multiple LLM queries: re-describe the same input repeatedly (fresh
//!     describer randomness each time); measure recall of the overall
//!     top-5 concepts within each query's top-5. Paper: > 0.80.
//! (b) Input noise before description: add 0.07·σ noise to the input,
//!     re-describe, re-embed; recall of the baseline top-5. Paper: > 0.80.
//! (c) Input noise before explanation: perturb the input, re-run the
//!     trained explainer; recall of the baseline top-5 explanation
//!     concepts. Paper: ≈ 0.9.

#![forbid(unsafe_code)]

use agua::explain::factual;
use agua::robustness::{mean_recall_at_k, recall, top_k_indices};
use agua_app::codec::object;
use agua_app::{abr_app, AppData, Application, RolloutSpec, ABR, CC, DDOS};
use agua_bench::ExperimentRunner;
use agua_engine::FitSpec;
use agua_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde_json::Value;

const TOP_K: usize = 5;
const QUERIES: usize = 10;
const NOISE_FRAC: f32 = 0.07;
const SAMPLES: usize = 20;

struct RobustnessRow {
    application: String,
    multi_query_recall: f32,
    input_noise_recall: f32,
    explainer_noise_recall: f32,
}

/// Per-feature σ over a dataset's raw features.
fn feature_std(data: &AppData) -> Vec<f32> {
    let n = data.features.len() as f32;
    let d = data.features[0].len();
    let mut mean = vec![0.0f32; d];
    for f in &data.features {
        for (m, &v) in mean.iter_mut().zip(f) {
            *m += v / n;
        }
    }
    let mut var = vec![0.0f32; d];
    for f in &data.features {
        for i in 0..d {
            var[i] += (f[i] - mean[i]) * (f[i] - mean[i]) / n;
        }
    }
    var.into_iter().map(f32::sqrt).collect()
}

fn add_noise(features: &[f32], std: &[f32], rng: &mut StdRng) -> Vec<f32> {
    features
        .iter()
        .zip(std)
        .map(|(&v, &s)| (v + rng.random_range(-1.0..1.0) * NOISE_FRAC * s).clamp(0.0, 1.0))
        .collect()
}

fn run_app(
    runner: &ExperimentRunner,
    app: &'static dyn Application,
    train_spec: &RolloutSpec,
    probe_spec: &RolloutSpec,
    controller_seed: u64,
    seed: u64,
) -> RobustnessRow {
    let store = runner.store();
    let fitted = runner.fit(
        app,
        &FitSpec { controller_seed, rollout: train_spec.clone(), ..FitSpec::standard(0) },
    );
    let controller = &fitted.controller;
    let model = &fitted.model;
    let labeler = &fitted.labeler;
    let probe = store.rollout(app, controller, probe_spec, runner.obs());

    let std = feature_std(&fitted.train);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut multi_query = Vec::new();
    let mut input_noise = Vec::new();
    let mut explainer_noise = Vec::new();

    for s in 0..SAMPLES.min(probe.len()) {
        let features = &probe.features[s];
        let sections = app.sections_of(features);

        // (a) Multiple LLM queries: the describer's own randomness.
        let runs: Vec<Vec<f32>> = (0..QUERIES)
            .map(|q| {
                let description = labeler.describe(&sections, seed ^ ((s as u64) << 16) ^ q as u64);
                labeler.similarities(&description)
            })
            .collect();
        // Overall top-5 = top-5 of the mean similarity across queries.
        let dim = runs[0].len();
        let mean: Vec<f32> =
            (0..dim).map(|i| runs.iter().map(|r| r[i]).sum::<f32>() / runs.len() as f32).collect();
        multi_query.push(mean_recall_at_k(&mean, &runs, TOP_K));

        // (b) Noise before description.
        let baseline = labeler.similarities(&labeler.describe(&sections, 1000 + s as u64));
        let noisy_runs: Vec<Vec<f32>> = (0..QUERIES)
            .map(|q| {
                let noised = add_noise(features, &std, &mut rng);
                let noised_sections = app.sections_of(&noised);
                let description =
                    labeler.describe(&noised_sections, 2000 + (s * QUERIES + q) as u64);
                labeler.similarities(&description)
            })
            .collect();
        input_noise.push(mean_recall_at_k(&baseline, &noisy_runs, TOP_K));

        // (c) Noise into the trained explainer.
        let base_emb = controller.embeddings(&Matrix::row_vector(features));
        let base_exp = factual(model, &base_emb);
        let base_scores: Vec<f32> = model
            .concept_names
            .iter()
            .map(|n| {
                base_exp
                    .contributions
                    .iter()
                    .find(|c| &c.concept == n)
                    .map(|c| c.weight)
                    .unwrap_or(0.0)
            })
            .collect();
        let base_top = top_k_indices(&base_scores, TOP_K);
        let mut recalls = Vec::new();
        for _ in 0..QUERIES {
            let noised = add_noise(features, &std, &mut rng);
            let emb = controller.embeddings(&Matrix::row_vector(&noised));
            let exp = factual(model, &emb);
            let scores: Vec<f32> = model
                .concept_names
                .iter()
                .map(|n| {
                    exp.contributions
                        .iter()
                        .find(|c| &c.concept == n)
                        .map(|c| c.weight)
                        .unwrap_or(0.0)
                })
                .collect();
            recalls.push(recall(&base_top, &top_k_indices(&scores, TOP_K)));
        }
        explainer_noise.push(recalls.iter().sum::<f32>() / recalls.len() as f32);
    }

    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    RobustnessRow {
        application: app.display_name().to_string(),
        multi_query_recall: avg(&multi_query),
        input_noise_recall: avg(&input_noise),
        explainer_noise_recall: avg(&explainer_noise),
    }
}

fn main() {
    let runner = ExperimentRunner::new("Figure 12", "Robustness to LLM randomness and input noise");
    let mut rows = Vec::new();

    println!("\n[ABR]…");
    let abr_traces = runner.size(40, 8) * abr_app::CHUNKS;
    rows.push(run_app(
        &runner,
        &ABR,
        &RolloutSpec::on("train2021", abr_traces, 12),
        &RolloutSpec::on("train2021", 4 * abr_app::CHUNKS, 55),
        11,
        71,
    ));

    println!("[CC]…");
    rows.push(run_app(
        &runner,
        &CC,
        &RolloutSpec::new(runner.size(2000, 400), 22),
        &RolloutSpec::new(40, 56),
        21,
        72,
    ));

    println!("[DDoS]…");
    rows.push(run_app(
        &runner,
        &DDOS,
        &RolloutSpec::new(runner.size(1000, 200), 32),
        &RolloutSpec::new(40, 57),
        31,
        73,
    ));

    println!(
        "\n{:<8} {:>22} {:>20} {:>22}",
        "app", "(a) multi-query recall", "(b) input-noise", "(c) explainer-noise"
    );
    println!("{}", "-".repeat(76));
    for r in &rows {
        println!(
            "{:<8} {:>22.3} {:>20.3} {:>22.3}",
            r.application, r.multi_query_recall, r.input_noise_recall, r.explainer_noise_recall
        );
    }
    println!("\nPaper shape: (a) > 0.80, (b) > 0.80, (c) ≈ 0.9 across applications.");

    let result: Vec<Value> = rows
        .iter()
        .map(|r| {
            object(vec![
                ("application", Value::String(r.application.clone())),
                ("explainer_noise_recall", Value::Number(f64::from(r.explainer_noise_recall))),
                ("input_noise_recall", Value::Number(f64::from(r.input_noise_recall))),
                ("multi_query_recall", Value::Number(f64::from(r.multi_query_recall))),
            ])
        })
        .collect();
    runner.finish("fig12_robustness", &Value::Array(result));
}
