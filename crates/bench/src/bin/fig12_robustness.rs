//! **Figure 12** — Robustness of Agua's pipeline to noise.
//!
//! (a) Multiple LLM queries: re-describe the same input repeatedly (fresh
//!     describer randomness each time); measure recall of the overall
//!     top-5 concepts within each query's top-5. Paper: > 0.80.
//! (b) Input noise before description: add 0.07·σ noise to the input,
//!     re-describe, re-embed; recall of the baseline top-5. Paper: > 0.80.
//! (c) Input noise before explanation: perturb the input, re-run the
//!     trained explainer; recall of the baseline top-5 explanation
//!     concepts. Paper: ≈ 0.9.

#![forbid(unsafe_code)]

use abr_env::{AbrObservation, DatasetEra};
use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts, ConceptSet};
use agua::explain::factual;
use agua::robustness::{mean_recall_at_k, recall, top_k_indices};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, cc_app, ddos_app, fit_agua, labeler_for, AppData, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_controllers::cc::CcVariant;
use agua_controllers::PolicyNet;
use agua_nn::Matrix;
use cc_env::CcObservation;
use ddos_env::WINDOW;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;

const TOP_K: usize = 5;
const QUERIES: usize = 10;
const NOISE_FRAC: f32 = 0.07;
const SAMPLES: usize = 20;

#[derive(Debug, Serialize)]
struct RobustnessRow {
    application: String,
    multi_query_recall: f32,
    input_noise_recall: f32,
    explainer_noise_recall: f32,
}

/// Per-feature σ over a dataset's raw features.
fn feature_std(data: &AppData) -> Vec<f32> {
    let n = data.features.len() as f32;
    let d = data.features[0].len();
    let mut mean = vec![0.0f32; d];
    for f in &data.features {
        for (m, &v) in mean.iter_mut().zip(f) {
            *m += v / n;
        }
    }
    let mut var = vec![0.0f32; d];
    for f in &data.features {
        for i in 0..d {
            var[i] += (f[i] - mean[i]) * (f[i] - mean[i]) / n;
        }
    }
    var.into_iter().map(f32::sqrt).collect()
}

fn add_noise(features: &[f32], std: &[f32], rng: &mut StdRng) -> Vec<f32> {
    features
        .iter()
        .zip(std)
        .map(|(&v, &s)| (v + rng.random_range(-1.0..1.0) * NOISE_FRAC * s).clamp(0.0, 1.0))
        .collect()
}

/// Sections for a (possibly noised) feature vector, per application.
fn sections_of(app: &str, features: &[f32]) -> Vec<agua_text::describer::DescribedSection> {
    match app {
        "ABR" => AbrObservation::from_features(features).sections(),
        "CC" => CcObservation::from_features(features, 10).sections(),
        "DDoS" => {
            // Rebuild a flow window view from the attribute-major layout.
            let take = |a: usize| features[a * WINDOW..(a + 1) * WINDOW].to_vec();
            let w = ddos_env::FlowWindow {
                kind: ddos_env::FlowKind::BenignHttp, // placeholder tag; features carry the data
                iat_s: take(0).iter().map(|v| v * ddos_env::observation::IAT_MAX).collect(),
                size_bytes: take(1).iter().map(|v| v * ddos_env::observation::SIZE_MAX).collect(),
                outbound: take(2),
                syn: take(3),
                ack: take(4),
                udp: take(5),
                payload_entropy: take(6),
                source_consistency: take(7),
            };
            ddos_env::DdosObservation::new(w).sections()
        }
        _ => unreachable!("unknown app"),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_app(
    app: &str,
    concepts: &ConceptSet,
    controller: &PolicyNet,
    n_outputs: usize,
    train: &AppData,
    probe: &AppData,
    seed: u64,
) -> RobustnessRow {
    let variant = LlmVariant::HighQuality;
    let labeler = labeler_for(concepts, variant);
    let (model, _) = fit_agua(concepts, n_outputs, train, variant, &TrainParams::tuned(), 42);
    let std = feature_std(train);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut multi_query = Vec::new();
    let mut input_noise = Vec::new();
    let mut explainer_noise = Vec::new();

    for s in 0..SAMPLES.min(probe.len()) {
        let features = &probe.features[s];
        let sections = sections_of(app, features);

        // (a) Multiple LLM queries: the describer's own randomness.
        let runs: Vec<Vec<f32>> = (0..QUERIES)
            .map(|q| {
                let description = labeler.describe(&sections, seed ^ ((s as u64) << 16) ^ q as u64);
                labeler.similarities(&description)
            })
            .collect();
        // Overall top-5 = top-5 of the mean similarity across queries.
        let dim = runs[0].len();
        let mean: Vec<f32> =
            (0..dim).map(|i| runs.iter().map(|r| r[i]).sum::<f32>() / runs.len() as f32).collect();
        multi_query.push(mean_recall_at_k(&mean, &runs, TOP_K));

        // (b) Noise before description.
        let baseline = labeler.similarities(&labeler.describe(&sections, 1000 + s as u64));
        let noisy_runs: Vec<Vec<f32>> = (0..QUERIES)
            .map(|q| {
                let noised = add_noise(features, &std, &mut rng);
                let noised_sections = sections_of(app, &noised);
                let description =
                    labeler.describe(&noised_sections, 2000 + (s * QUERIES + q) as u64);
                labeler.similarities(&description)
            })
            .collect();
        input_noise.push(mean_recall_at_k(&baseline, &noisy_runs, TOP_K));

        // (c) Noise into the trained explainer.
        let base_emb = controller.embeddings(&Matrix::row_vector(features));
        let base_exp = factual(&model, &base_emb);
        let base_scores: Vec<f32> = model
            .concept_names
            .iter()
            .map(|n| {
                base_exp
                    .contributions
                    .iter()
                    .find(|c| &c.concept == n)
                    .map(|c| c.weight)
                    .unwrap_or(0.0)
            })
            .collect();
        let base_top = top_k_indices(&base_scores, TOP_K);
        let mut recalls = Vec::new();
        for _ in 0..QUERIES {
            let noised = add_noise(features, &std, &mut rng);
            let emb = controller.embeddings(&Matrix::row_vector(&noised));
            let exp = factual(&model, &emb);
            let scores: Vec<f32> = model
                .concept_names
                .iter()
                .map(|n| {
                    exp.contributions
                        .iter()
                        .find(|c| &c.concept == n)
                        .map(|c| c.weight)
                        .unwrap_or(0.0)
                })
                .collect();
            recalls.push(recall(&base_top, &top_k_indices(&scores, TOP_K)));
        }
        explainer_noise.push(recalls.iter().sum::<f32>() / recalls.len() as f32);
    }

    let avg = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    RobustnessRow {
        application: app.to_string(),
        multi_query_recall: avg(&multi_query),
        input_noise_recall: avg(&input_noise),
        explainer_noise_recall: avg(&explainer_noise),
    }
}

fn main() {
    banner("Figure 12", "Robustness to LLM randomness and input noise");
    let mut rows = Vec::new();

    println!("\n[ABR]…");
    let abr_ctrl = abr_app::build_controller(11);
    let abr_train = abr_app::rollout(&abr_ctrl, DatasetEra::Train2021, 40, 12);
    let abr_probe = abr_app::rollout(&abr_ctrl, DatasetEra::Train2021, 4, 55);
    rows.push(run_app(
        "ABR",
        &abr_concepts(),
        &abr_ctrl,
        abr_env::LEVELS,
        &abr_train,
        &abr_probe,
        71,
    ));

    println!("[CC]…");
    let cc_ctrl = cc_app::build_controller(CcVariant::Original, 21);
    let cc_train = cc_app::rollout(&cc_ctrl, CcVariant::Original, 2000, 22);
    let cc_probe = cc_app::rollout(&cc_ctrl, CcVariant::Original, 40, 56);
    rows.push(run_app("CC", &cc_concepts(), &cc_ctrl, cc_env::ACTIONS, &cc_train, &cc_probe, 72));

    println!("[DDoS]…");
    let ddos_ctrl = ddos_app::build_controller(31);
    let ddos_train = ddos_app::rollout(&ddos_ctrl, 1000, 32);
    let ddos_probe = ddos_app::rollout(&ddos_ctrl, 40, 57);
    rows.push(run_app("DDoS", &ddos_concepts(), &ddos_ctrl, 2, &ddos_train, &ddos_probe, 73));

    println!(
        "\n{:<8} {:>22} {:>20} {:>22}",
        "app", "(a) multi-query recall", "(b) input-noise", "(c) explainer-noise"
    );
    println!("{}", "-".repeat(76));
    for r in &rows {
        println!(
            "{:<8} {:>22.3} {:>20.3} {:>22.3}",
            r.application, r.multi_query_recall, r.input_noise_recall, r.explainer_noise_recall
        );
    }
    println!("\nPaper shape: (a) > 0.80, (b) > 0.80, (c) ≈ 0.9 across applications.");
    save_json("fig12_robustness", &rows);
}
