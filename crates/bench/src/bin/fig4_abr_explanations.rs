//! **Figure 4** — Agua's factual and counterfactual explanations for the
//! motivating ABR state.
//!
//! (a) Factual: why the controller picked the low bitrate — the paper
//! finds 'Extreme Network Degradation' dominant with a minor 'Recent
//! Network Improvement' component.
//! (b) Counterfactual for the operator's expected medium bitrate — the
//! paper finds 'Avoiding Large Quality Fluctuations' / 'Moderate Network
//! Throughput' would need to dominate, with 'High Network Throughput'
//! absent.

#![forbid(unsafe_code)]

use agua::explain::{ConceptContribution, RowQuery};
use agua_app::codec::object;
use agua_app::{abr_app, Application, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use agua_engine::{serve_one, ExplainRequest, FitSpec};
use serde_json::Value;

fn top_pairs(contributions: &[ConceptContribution], n: usize) -> Value {
    Value::Array(
        contributions
            .iter()
            .take(n)
            .map(|c| {
                Value::Array(vec![
                    Value::String(c.concept.clone()),
                    Value::Number(f64::from(c.weight)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let runner = ExperimentRunner::new(
        "Figure 4",
        "Factual + counterfactual explanations, motivating ABR state",
    );

    println!("\ntraining controller, rolling out, fitting Agua…");
    let n_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let spec = FitSpec {
        controller_seed: 11,
        rollout: RolloutSpec::on("train2021", n_traces, 12),
        ..FitSpec::standard(0)
    };
    let session = runner.fit(&ABR, &spec).into_session(&ABR, &spec);

    // Serve both queries through the engine's one-shot path: the same
    // validated request pipeline `agua-serve` coalesces, so this figure
    // reproduces exactly what the daemon would return for this state.
    let features = abr_app::motivating_observation().features();
    let request = |query: RowQuery| ExplainRequest {
        app: ABR.name().to_string(),
        features: features.clone(),
        query,
    };
    let served = serve_one(&session, &request(RowQuery::Factual), runner.obs())
        .expect("factual explanation");
    let chosen = served.verdict;
    println!("\ncontroller's choice for the motivating state: level {chosen}");

    let fact = served.explanation;
    println!("\n(a) {}", fact.render(6));

    // Counterfactual: the operator expected a medium-quality bitrate.
    let medium = ABR.n_outputs() / 2;
    let counter = serve_one(&session, &request(RowQuery::Counterfactual(medium)), runner.obs())
        .expect("counterfactual explanation")
        .explanation;
    println!("(b) {}", counter.render(6));

    // Spell out the absence reading the paper highlights for Fig. 4b.
    if let Some(high_tput) =
        counter.contributions.iter().find(|c| c.concept == "High Network Throughput")
    {
        let dominant_class = high_tput
            .per_class
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| ["low", "medium", "high"][i])
            .unwrap_or("?");
        println!(
            "    'High Network Throughput' contributes mainly through its \
             {dominant_class}-similarity class — i.e. its ABSENCE shapes the \
             medium-bitrate case."
        );
    }

    runner.finish(
        "fig4_abr_explanations",
        &object(vec![
            ("controller_level", Value::Number(chosen as f64)),
            ("counterfactual_level", Value::Number(medium as f64)),
            ("counterfactual_top", top_pairs(&counter.contributions, 6)),
            ("factual_top", top_pairs(&fact.contributions, 6)),
        ]),
    );
}
