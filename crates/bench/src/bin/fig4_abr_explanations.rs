//! **Figure 4** — Agua's factual and counterfactual explanations for the
//! motivating ABR state.
//!
//! (a) Factual: why the controller picked the low bitrate — the paper
//! finds 'Extreme Network Degradation' dominant with a minor 'Recent
//! Network Improvement' component.
//! (b) Counterfactual for the operator's expected medium bitrate — the
//! paper finds 'Avoiding Large Quality Fluctuations' / 'Moderate Network
//! Throughput' would need to dominate, with 'High Network Throughput'
//! absent.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::abr_concepts;
use agua::explain::{counterfactual, factual};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_nn::Matrix;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig4Result {
    controller_level: usize,
    factual_top: Vec<(String, f32)>,
    counterfactual_level: usize,
    counterfactual_top: Vec<(String, f32)>,
}

fn main() {
    banner("Figure 4", "Factual + counterfactual explanations, motivating ABR state");

    println!("\ntraining controller, rolling out, fitting Agua…");
    let controller = abr_app::build_controller(11);
    let train = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 12);
    let concepts = abr_concepts();
    let (model, _) = fit_agua(
        &concepts,
        abr_env::LEVELS,
        &train,
        LlmVariant::HighQuality,
        &TrainParams::tuned(),
        42,
    );

    let obs = abr_app::motivating_observation();
    let x = Matrix::row_vector(&obs.features());
    let h = controller.embeddings(&x);
    let chosen = controller.act(&obs.features());
    println!("\ncontroller's choice for the motivating state: level {chosen}");

    let fact = factual(&model, &h);
    println!("\n(a) {}", fact.render(6));

    // Counterfactual: the operator expected a medium-quality bitrate.
    let medium = abr_env::LEVELS / 2;
    let counter = counterfactual(&model, &h, medium);
    println!("(b) {}", counter.render(6));

    // Spell out the absence reading the paper highlights for Fig. 4b.
    if let Some(high_tput) =
        counter.contributions.iter().find(|c| c.concept == "High Network Throughput")
    {
        let dominant_class = high_tput
            .per_class
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| ["low", "medium", "high"][i])
            .unwrap_or("?");
        println!(
            "    'High Network Throughput' contributes mainly through its \
             {dominant_class}-similarity class — i.e. its ABSENCE shapes the \
             medium-bitrate case."
        );
    }

    save_json(
        "fig4_abr_explanations",
        &Fig4Result {
            controller_level: chosen,
            factual_top: fact
                .contributions
                .iter()
                .take(6)
                .map(|c| (c.concept.clone(), c.weight))
                .collect(),
            counterfactual_level: medium,
            counterfactual_top: counter
                .contributions
                .iter()
                .take(6)
                .map(|c| (c.concept.clone(), c.weight))
                .collect(),
        },
    );
}
