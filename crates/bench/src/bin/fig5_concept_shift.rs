//! **Figure 5** — Concept-level distribution-shift detection between the
//! 2021 training era and the 2024 deployment era.
//!
//! Traces from both eras are rolled out under the controller, each trace
//! is tagged with its top-3 concepts via batched explanations, and the
//! normalized concept proportions are compared.
//!
//! Paper shape: 'Volatile Network Throughput', 'Rapidly Depleting
//! Buffer', 'Recent Network Improvement' and 'High Content Complexity'
//! increase in 2024; 'Stable Buffer' and 'Extreme Network Degradation'
//! decrease.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::abr_concepts;
use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_nn::Matrix;

fn trace_batches(data: &agua_bench::AppData) -> Vec<Matrix> {
    (0..data.trace_count()).map(|t| data.trace_embeddings(t)).collect()
}

fn main() {
    banner("Figure 5", "Concept-level distribution shift, 2021 vs 2024");

    println!("\ntraining controller and fitting Agua on 2021 data…");
    let controller = abr_app::build_controller(11);
    let train = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 12);
    let concepts = abr_concepts();
    let (model, _) = fit_agua(
        &concepts,
        abr_env::LEVELS,
        &train,
        LlmVariant::HighQuality,
        &TrainParams::tuned(),
        42,
    );

    println!("rolling out 2021 and 2024 trace sets…");
    let data_2021 = abr_app::rollout(&controller, DatasetEra::Train2021, 60, 101);
    let data_2024 = abr_app::rollout(&controller, DatasetEra::Deploy2024, 60, 202);

    let (tags_2021, tags_2024) =
        tag_datasets(&model, &trace_batches(&data_2021), &trace_batches(&data_2024), 3);
    let names = concepts.names();
    let p_2021 = concept_proportions(&tags_2021, &names);
    let p_2024 = concept_proportions(&tags_2024, &names);
    let shifts = detect_shift(&p_2021, &p_2024, &names);

    println!("\n{:<44} {:>8} {:>8} {:>8}", "Concept", "2021", "2024", "Δ");
    println!("{}", "-".repeat(72));
    for s in &shifts {
        let marker = if s.delta > 0.03 { " ← retrain on these" } else { "" };
        println!("{:<44} {:>8.3} {:>8.3} {:>+8.3}{marker}", s.concept, s.old, s.new, s.delta);
    }
    println!(
        "\nPaper shape: volatile throughput / depleting buffer / recent \
         improvement / high complexity up; stable buffer / extreme \
         degradation down."
    );

    save_json("fig5_concept_shift", &shifts);
}
