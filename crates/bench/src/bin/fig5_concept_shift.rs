//! **Figure 5** — Concept-level distribution-shift detection between the
//! 2021 training era and the 2024 deployment era.
//!
//! Traces from both eras are rolled out under the controller, each trace
//! is tagged with its top-3 concepts via batched explanations, and the
//! normalized concept proportions are compared.
//!
//! Paper shape: 'Volatile Network Throughput', 'Rapidly Depleting
//! Buffer', 'Recent Network Improvement' and 'High Content Complexity'
//! increase in 2024; 'Stable Buffer' and 'Extreme Network Degradation'
//! decrease.

#![forbid(unsafe_code)]

use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua_app::codec::object;
use agua_app::{abr_app, AppData, Application, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use agua_engine::FitSpec;
use agua_nn::Matrix;
use serde_json::Value;

fn trace_batches(data: &AppData) -> Vec<Matrix> {
    (0..data.trace_count()).map(|t| data.trace_embeddings(t)).collect()
}

fn main() {
    let runner =
        ExperimentRunner::new("Figure 5", "Concept-level distribution shift, 2021 vs 2024");
    let store = runner.store();

    println!("\ntraining controller and fitting Agua on 2021 data…");
    let spec = FitSpec {
        controller_seed: 11,
        rollout: RolloutSpec::on("train2021", 40 * abr_app::CHUNKS, 12),
        ..FitSpec::standard(0)
    };
    let fitted = runner.fit(&ABR, &spec);
    let controller = &fitted.controller;
    let model = &fitted.model;

    println!("rolling out 2021 and 2024 trace sets…");
    let spec21 = RolloutSpec::on("train2021", 60 * abr_app::CHUNKS, 101);
    let spec24 = RolloutSpec::on("deploy2024", 60 * abr_app::CHUNKS, 202);
    let data_2021 = store.rollout(&ABR, controller, &spec21, runner.obs());
    let data_2024 = store.rollout(&ABR, controller, &spec24, runner.obs());

    let (tags_2021, tags_2024) =
        tag_datasets(model, &trace_batches(&data_2021), &trace_batches(&data_2024), 3);
    let names = ABR.concepts().names();
    let p_2021 = concept_proportions(&tags_2021, &names);
    let p_2024 = concept_proportions(&tags_2024, &names);
    let shifts = detect_shift(&p_2021, &p_2024, &names);

    println!("\n{:<44} {:>8} {:>8} {:>8}", "Concept", "2021", "2024", "Δ");
    println!("{}", "-".repeat(72));
    for s in &shifts {
        let marker = if s.delta > 0.03 { " ← retrain on these" } else { "" };
        println!("{:<44} {:>8.3} {:>8.3} {:>+8.3}{marker}", s.concept, s.old, s.new, s.delta);
    }
    println!(
        "\nPaper shape: volatile throughput / depleting buffer / recent \
         improvement / high complexity up; stable buffer / extreme \
         degradation down."
    );

    let rows: Vec<Value> = shifts
        .iter()
        .map(|s| {
            object(vec![
                ("concept", Value::String(s.concept.clone())),
                ("delta", Value::Number(f64::from(s.delta))),
                ("new", Value::Number(f64::from(s.new))),
                ("old", Value::Number(f64::from(s.old))),
            ])
        })
        .collect();
    runner.finish("fig5_concept_shift", &Value::Array(rows));
}
