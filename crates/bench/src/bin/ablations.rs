//! **Ablations** — the design choices DESIGN.md §5 calls out, each tested
//! on the ABR application:
//!
//! 1. **LayerNorm in δ** — the paper motivates the normalization between
//!    δ's layers (§4); remove it and measure fidelity.
//! 2. **k = 3 similarity classes vs boolean** — the paper argues three
//!    quantization levels beat a present/absent bit (§3.3).
//! 3. **ElasticNet strength** — the fidelity/sparsity trade-off of Eq. 6.
//! 4. **Embedding source** — δ on controller embeddings `h(x)` (the
//!    paper's design) vs δ directly on raw input features.

#![forbid(unsafe_code)]

use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_app::codec::object;
use agua_app::{abr_app, Application, LlmVariant, RolloutSpec, ABR};
use agua_bench::ExperimentRunner;
use agua_nn::Matrix;
use agua_text::describer::Describer;
use serde_json::Value;

struct AblationResult {
    ablation: String,
    setting: String,
    fidelity: f32,
    note: String,
}

fn main() {
    let runner =
        ExperimentRunner::new("Ablations", "LayerNorm, quantization, ElasticNet, embedding source");
    let store = runner.store();
    let mut results: Vec<AblationResult> = Vec::new();

    println!("\npreparing the ABR pipeline…");
    let controller = store.controller(&ABR, 11, runner.obs());
    let n_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let train =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 12), runner.obs());
    let test =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 13), runner.obs());
    let concepts = ABR.concepts();
    let variant = LlmVariant::HighQuality;
    let params = TrainParams::tuned();

    // The ablated fits vary the training recipe itself, so they run
    // outside the surrogate cache (which keys the canonical recipe).
    let labels_for = |quantizer: Quantizer| -> (Vec<Vec<usize>>, usize) {
        let labeler = ConceptLabeler::new(
            &concepts,
            Describer::new(variant.describer_config()),
            variant.embedder(),
            quantizer,
        );
        let k = labeler.quantizer().classes();
        (labeler.label_batch(&train.sections, 42), k)
    };
    let (labels3, k3) = labels_for(Quantizer::calibrated());

    // 1. LayerNorm ablation.
    println!("[1/4] LayerNorm in δ…");
    for (setting, layernorm) in [("with LayerNorm", true), ("without LayerNorm", false)] {
        let ds = SurrogateDataset {
            embeddings: train.embeddings.clone(),
            concept_labels: labels3.clone(),
            outputs: train.outputs.clone(),
        };
        let model = AguaModel::fit_with_options(
            &concepts,
            k3,
            ABR.n_outputs(),
            &ds,
            &params,
            layernorm,
            &agua_obs::Noop,
        );
        results.push(AblationResult {
            ablation: "layernorm".into(),
            setting: setting.into(),
            fidelity: model.fidelity(&test.embeddings, &test.outputs),
            note: "δ = Linear→ReLU→[LayerNorm]→Linear".into(),
        });
    }

    // 2. Quantization ablation: k = 3 vs boolean.
    println!("[2/4] similarity quantization…");
    for (setting, quantizer) in [
        ("k = 3 (low/medium/high)", Quantizer::calibrated()),
        ("k = 2 (absent/present)", Quantizer::boolean(0.7)),
    ] {
        let (labels, k) = labels_for(quantizer);
        let ds = SurrogateDataset {
            embeddings: train.embeddings.clone(),
            concept_labels: labels,
            outputs: train.outputs.clone(),
        };
        let model = AguaModel::fit(&concepts, k, ABR.n_outputs(), &ds, &params);
        results.push(AblationResult {
            ablation: "quantization".into(),
            setting: setting.into(),
            fidelity: model.fidelity(&test.embeddings, &test.outputs),
            note: "ψ_k classes per concept".into(),
        });
    }

    // 3. ElasticNet strength: fidelity vs output-weight sparsity.
    println!("[3/4] ElasticNet strength…");
    for coeff in [0.0f32, 1e-5, 1e-3, 1e-2] {
        let ds = SurrogateDataset {
            embeddings: train.embeddings.clone(),
            concept_labels: labels3.clone(),
            outputs: train.outputs.clone(),
        };
        let p = TrainParams { elastic_coeff: coeff, ..params };
        let model = AguaModel::fit(&concepts, k3, ABR.n_outputs(), &ds, &p);
        let w = model.output_mapping.weights();
        let near_zero = w.as_slice().iter().filter(|v| v.abs() < 1e-2).count() as f32
            / (w.rows() * w.cols()) as f32;
        results.push(AblationResult {
            ablation: "elasticnet".into(),
            setting: format!("λ = {coeff:.0e}"),
            fidelity: model.fidelity(&test.embeddings, &test.outputs),
            note: format!("{:.0}% of Ω weights near zero", near_zero * 100.0),
        });
    }

    // 4. Embedding source: h(x) vs raw features.
    println!("[4/4] embedding source…");
    let raw_train = Matrix::from_rows(&train.features);
    let raw_test = Matrix::from_rows(&test.features);
    for (setting, emb_train, emb_test) in [
        ("controller embeddings h(x)", &train.embeddings, &test.embeddings),
        ("raw input features", &raw_train, &raw_test),
    ] {
        let ds = SurrogateDataset {
            embeddings: emb_train.clone(),
            concept_labels: labels3.clone(),
            outputs: train.outputs.clone(),
        };
        let model = AguaModel::fit(&concepts, k3, ABR.n_outputs(), &ds, &params);
        results.push(AblationResult {
            ablation: "embedding-source".into(),
            setting: setting.into(),
            fidelity: model.fidelity(emb_test, &test.outputs),
            note: "what δ consumes".into(),
        });
    }

    println!("\n{:<18} {:<30} {:>9}  note", "ablation", "setting", "fidelity");
    println!("{}", "-".repeat(90));
    for r in &results {
        println!("{:<18} {:<30} {:>9.3}  {}", r.ablation, r.setting, r.fidelity, r.note);
    }

    let rows: Vec<Value> = results
        .iter()
        .map(|r| {
            object(vec![
                ("ablation", Value::String(r.ablation.clone())),
                ("fidelity", Value::Number(f64::from(r.fidelity))),
                ("note", Value::String(r.note.clone())),
                ("setting", Value::String(r.setting.clone())),
            ])
        })
        .collect();
    runner.finish("ablations", &Value::Array(rows));
}
