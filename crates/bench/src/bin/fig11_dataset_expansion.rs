//! **Figure 11** — Concept-guided dataset expansion.
//!
//! A concept-space store is built from descriptions of rollout states on
//! four workload families (3G/4G/5G/broadband). Given a few held-out
//! samples of each target workload, the store's nearest neighbours
//! assemble an expanded dataset; the cluster-distribution match between
//! expanded and target workloads is scored with the KS statistic.
//!
//! Paper shape: KS < 0.08 for every workload.

#![forbid(unsafe_code)]

use abr_env::{AbrSimulator, TraceFamily, VideoManifest};
use agua::lifecycle::expansion::{assign_cluster, kmeans, ks_statistic, ConceptStore};
use agua_app::codec::object;
use agua_app::{abr_app, LlmVariant, ABR};
use agua_bench::ExperimentRunner;
use agua_text::describer::Describer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;

const CLUSTERS: usize = 6;

/// Rolls the controller on one trace family and returns description
/// embeddings of the visited states.
fn family_embeddings(
    controller: &agua_controllers::PolicyNet,
    family: TraceFamily,
    n_traces: usize,
    seed: u64,
    describer: &Describer,
    embedder: &agua_text::Embedder,
) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for t in 0..n_traces {
        let manifest = VideoManifest::generate(abr_app::CHUNKS, 1.0, &mut rng);
        let trace = family.generate(abr_app::CHUNKS * 6, &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        let mut step = 0;
        while !sim.done() {
            let obs = sim.observation();
            // Sample every 5th state to keep the store diverse but small.
            if step % 5 == 0 {
                let description = describer
                    .describe_seeded(&obs.sections(), seed ^ (t as u64) << 8 | step as u64);
                out.push(embedder.embed(&description));
            }
            let action = controller.act(&obs.features());
            sim.step(action);
            step += 1;
        }
    }
    out
}

fn main() {
    let runner = ExperimentRunner::new("Figure 11", "Concept-guided dataset expansion (KS match)");

    println!("\ntraining controller…");
    let controller = runner.store().controller(&ABR, 11, runner.obs());
    let variant = LlmVariant::HighQuality;
    let describer = Describer::new(variant.describer_config());
    let embedder = variant.embedder();

    // Build the general store: states from all four workloads.
    println!("building the concept-space store over all four workloads…");
    let mut store_embeddings: Vec<Vec<f32>> = Vec::new();
    let mut store_workloads: Vec<usize> = Vec::new();
    for (w, family) in TraceFamily::all().into_iter().enumerate() {
        let embs = family_embeddings(
            &controller,
            family,
            runner.size(20, 6),
            300 + w as u64,
            &describer,
            &embedder,
        );
        store_workloads.extend(std::iter::repeat_n(w, embs.len()));
        store_embeddings.extend(embs);
    }
    println!("  store size: {} samples", store_embeddings.len());

    // Cluster the embedding space once; all distributions are measured
    // over these shared clusters. Clusters are relabelled by descending
    // global frequency so every workload shares one "unified clustering
    // axis" (paper Fig. 11).
    let (centroids, raw_assignments) = kmeans(&store_embeddings, CLUSTERS, 25, 17);
    let mut freq: Vec<(usize, usize)> =
        (0..CLUSTERS).map(|c| (c, raw_assignments.iter().filter(|&&a| a == c).count())).collect();
    freq.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let mut relabel = [0usize; CLUSTERS];
    for (new, (old, _)) in freq.into_iter().enumerate() {
        relabel[old] = new;
    }
    let assignments: Vec<usize> = raw_assignments.iter().map(|&a| relabel[a]).collect();
    let store = ConceptStore::new(store_embeddings.clone());

    let mut results = Vec::new();
    println!(
        "\n{:<12} {:>14} {:>16} {:>10}",
        "workload", "target size", "expanded size", "KS stat"
    );
    println!("{}", "-".repeat(56));
    for (w, family) in TraceFamily::all().into_iter().enumerate() {
        // Held-out queries: a few fresh samples of the target workload.
        let queries =
            family_embeddings(&controller, family, 6, 900 + w as u64, &describer, &embedder);
        let query_subset: Vec<Vec<f32>> = queries.iter().take(48).cloned().collect();

        // Expand: nearest stored samples per query. Duplicates across
        // queries are kept so the expanded multiset mirrors the target
        // workload's density, not just its support.
        let expanded_idx: Vec<usize> = query_subset
            .iter()
            .flat_map(|q| {
                let hits = store.query_scored(q, 12);
                let best = hits.first().map(|h| h.1).unwrap_or(0.0);
                hits.into_iter()
                    .filter(move |&(_, s)| s >= 0.97 * best)
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>()
            })
            .collect();
        let expanded_clusters: Vec<usize> = expanded_idx.iter().map(|&i| assignments[i]).collect();

        // Target distribution: the workload's own store samples.
        let target_clusters: Vec<usize> = assignments
            .iter()
            .zip(&store_workloads)
            .filter(|(_, &sw)| sw == w)
            .map(|(&c, _)| c)
            .collect();

        let ks = ks_statistic(&expanded_clusters, &target_clusters, CLUSTERS);
        println!(
            "{:<12} {:>14} {:>16} {:>10.4}",
            family.name(),
            target_clusters.len(),
            expanded_idx.len(),
            ks
        );
        results.push(object(vec![
            ("expanded_size", Value::Number(expanded_idx.len() as f64)),
            ("ks_statistic", Value::Number(f64::from(ks))),
            ("workload", Value::String(family.name().to_string())),
        ]));

        // Sanity: queries should land in clusters the workload occupies.
        let q_cluster = assign_cluster(&query_subset[0], &centroids);
        debug_assert!(q_cluster < CLUSTERS);
    }

    println!("\nPaper shape: KS statistic < 0.08 for every workload.");
    runner.finish("fig11_dataset_expansion", &Value::Array(results));
}
