//! **Table 2** — Explanation-fidelity comparison.
//!
//! Reproduces the paper's headline result: Agua's surrogate fidelity on
//! ABR, congestion control, and DDoS detection, for both LLM variants,
//! against Trustee's full and pruned decision trees.
//!
//! Paper values (shape to match): Agua ≥ 0.93 everywhere, above Trustee;
//! Trustee collapses on CC (0.215/0.235) while staying strong on ABR
//! (0.946/0.949) and DDoS (0.991/0.977).

#![forbid(unsafe_code)]

use agua::surrogate::TrainParams;
use agua_app::codec::object;
use agua_app::{abr_app, AppData, Application, LlmVariant, RolloutSpec, ABR, CC, DDOS};
use agua_bench::ExperimentRunner;
use serde_json::Value;
use trustee::{TreeConfig, TrusteeReport};

fn trustee_fidelity(
    train: &AppData,
    test: &AppData,
    n_classes: usize,
    names: Vec<String>,
) -> (f32, f32) {
    let report = TrusteeReport::distill(
        &train.features,
        &train.outputs,
        &test.features,
        &test.outputs,
        n_classes,
        TreeConfig::default(),
        32,
        names,
    );
    (report.full_fidelity, report.pruned_fidelity)
}

/// Fidelity for both LLM variants; the two independent fits run on
/// scoped worker threads (each is fully seeded and the runner is `Sync`,
/// so the numbers are identical to the sequential runs).
fn agua_fidelities(
    runner: &ExperimentRunner,
    app: &'static dyn Application,
    train: &agua_app::Keyed<AppData>,
    test: &AppData,
) -> (f32, f32) {
    let params = TrainParams::tuned();
    let params = &params;
    let f = agua_nn::parallel::par_jobs(
        [LlmVariant::OpenSource, LlmVariant::HighQuality]
            .map(|variant| {
                move || {
                    let (model, _) =
                        runner.store().surrogate(app, variant, params, 42, train, runner.obs());
                    model.fidelity(&test.embeddings, &test.outputs)
                }
            })
            .into_iter()
            .collect(),
    );
    (f[0], f[1])
}

fn main() {
    let runner =
        ExperimentRunner::new("Table 2", "Fidelity of Agua vs Trustee across applications");
    let store = runner.store();
    let mut rows = Vec::new();

    // Sample budgets per application (paper: ABR 2k/2k pairs, CC 2k/4k,
    // DDoS 1k/450), with controller/rollout seeds matching the seed repo.
    let abr_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let jobs: [(&'static dyn Application, &str, u64, usize, usize); 3] = [
        (&ABR, "ABR", 11, abr_traces, abr_traces),
        (&CC, "CC", 21, runner.size(2000, 400), runner.size(4000, 800)),
        (&DDOS, "DDoS Detection", 31, runner.size(1000, 200), runner.size(450, 120)),
    ];

    for (app, label, seed, train_samples, test_samples) in jobs {
        println!("\n[{}] training controller and collecting rollouts…", app.display_name());
        let ctrl = store.controller(app, seed, runner.obs());
        let train =
            store.rollout(app, &ctrl, &RolloutSpec::new(train_samples, seed + 1), runner.obs());
        let test =
            store.rollout(app, &ctrl, &RolloutSpec::new(test_samples, seed + 2), runner.obs());
        let (tf, tp) = trustee_fidelity(&train, &test, app.n_outputs(), app.feature_names());
        let (aos, ahq) = agua_fidelities(&runner, app, &train, &test);
        rows.push((label.to_string(), tf, tp, aos, ahq));
    }

    println!(
        "\n{:<16} {:>13} {:>15} {:>17} {:>14}",
        "Application", "Trustee Full", "Trustee Pruned", "Agua (Llama-cls)", "Agua (GPT-cls)"
    );
    println!("{}", "-".repeat(80));
    for (application, tf, tp, aos, ahq) in &rows {
        println!("{application:<16} {tf:>13.3} {tp:>15.3} {aos:>17.3} {ahq:>14.3}");
    }
    println!("\nPaper Table 2 for reference:");
    println!("  ABR   — Trustee 0.946/0.949, Agua 0.982/0.983");
    println!("  CC    — Trustee 0.215/0.235, Agua 0.932/0.936");
    println!("  DDoS  — Trustee 0.991/0.977, Agua 0.996/1.000");

    let result: Vec<Value> = rows
        .iter()
        .map(|(application, tf, tp, aos, ahq)| {
            object(vec![
                ("agua_high_quality", Value::Number(f64::from(*ahq))),
                ("agua_open_source", Value::Number(f64::from(*aos))),
                ("application", Value::String(application.clone())),
                ("trustee_full", Value::Number(f64::from(*tf))),
                ("trustee_pruned", Value::Number(f64::from(*tp))),
            ])
        })
        .collect();
    runner.finish("table2_fidelity", &Value::Array(result));
}
