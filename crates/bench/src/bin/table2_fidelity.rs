//! **Table 2** — Explanation-fidelity comparison.
//!
//! Reproduces the paper's headline result: Agua's surrogate fidelity on
//! ABR, congestion control, and DDoS detection, for both LLM variants,
//! against Trustee's full and pruned decision trees.
//!
//! Paper values (shape to match): Agua ≥ 0.93 everywhere, above Trustee;
//! Trustee collapses on CC (0.215/0.235) while staying strong on ABR
//! (0.946/0.949) and DDoS (0.991/0.977).

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts};
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, cc_app, ddos_app, fit_agua_jobs, AppData, FitJob, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_controllers::cc::CcVariant;
use serde::Serialize;
use trustee::{TreeConfig, TrusteeReport};

#[derive(Debug, Serialize)]
struct Row {
    application: String,
    trustee_full: f32,
    trustee_pruned: f32,
    agua_open_source: f32,
    agua_high_quality: f32,
}

fn trustee_fidelity(
    train: &AppData,
    test: &AppData,
    n_classes: usize,
    names: Vec<String>,
) -> (f32, f32) {
    let report = TrusteeReport::distill(
        &train.features,
        &train.outputs,
        &test.features,
        &test.outputs,
        n_classes,
        TreeConfig::default(),
        32,
        names,
    );
    (report.full_fidelity, report.pruned_fidelity)
}

/// Fidelity for both LLM variants; the two independent fits run on
/// scoped worker threads (each is fully seeded, so the numbers are
/// identical to the sequential runs).
fn agua_fidelities(
    concepts: &agua::concepts::ConceptSet,
    n_outputs: usize,
    train: &AppData,
    test: &AppData,
) -> (f32, f32) {
    let params = TrainParams::tuned();
    let jobs = [LlmVariant::OpenSource, LlmVariant::HighQuality].map(|variant| FitJob {
        concepts,
        n_outputs,
        train,
        variant,
        params: &params,
        label_seed: 42,
    });
    let fits = fit_agua_jobs(&jobs);
    let f: Vec<f32> =
        fits.iter().map(|(model, _)| model.fidelity(&test.embeddings, &test.outputs)).collect();
    (f[0], f[1])
}

fn main() {
    banner("Table 2", "Fidelity of Agua vs Trustee across applications");
    let mut rows = Vec::new();

    // --- Adaptive bitrate streaming: 4,000 pairs (2k train / 2k test).
    println!("\n[ABR] training Gelato-style controller and collecting rollouts…");
    let abr_ctrl = abr_app::build_controller(11);
    let abr_train = abr_app::rollout(&abr_ctrl, DatasetEra::Train2021, 40, 12);
    let abr_test = abr_app::rollout(&abr_ctrl, DatasetEra::Train2021, 40, 13);
    let (tf, tp) =
        trustee_fidelity(&abr_train, &abr_test, abr_env::LEVELS, abr_app::feature_names());
    let concepts = abr_concepts();
    let (aos, ahq) = agua_fidelities(&concepts, abr_env::LEVELS, &abr_train, &abr_test);
    rows.push(Row {
        application: "ABR".into(),
        trustee_full: tf,
        trustee_pruned: tp,
        agua_open_source: aos,
        agua_high_quality: ahq,
    });

    // --- Congestion control: 2,000 train / 4,000 test.
    println!("[CC] training Aurora-style controller and collecting rollouts…");
    let cc_ctrl = cc_app::build_controller(CcVariant::Original, 21);
    let cc_train = cc_app::rollout(&cc_ctrl, CcVariant::Original, 2000, 22);
    let cc_test = cc_app::rollout(&cc_ctrl, CcVariant::Original, 4000, 23);
    let (tf, tp) = trustee_fidelity(
        &cc_train,
        &cc_test,
        cc_env::ACTIONS,
        cc_app::feature_names(CcVariant::Original),
    );
    let concepts = cc_concepts();
    let (aos, ahq) = agua_fidelities(&concepts, cc_env::ACTIONS, &cc_train, &cc_test);
    rows.push(Row {
        application: "CC".into(),
        trustee_full: tf,
        trustee_pruned: tp,
        agua_open_source: aos,
        agua_high_quality: ahq,
    });

    // --- DDoS detection: 1,000 train / 450 test.
    println!("[DDoS] training LUCID-style detector and collecting flows…");
    let ddos_ctrl = ddos_app::build_controller(31);
    let ddos_train = ddos_app::rollout(&ddos_ctrl, 1000, 32);
    let ddos_test = ddos_app::rollout(&ddos_ctrl, 450, 33);
    let (tf, tp) = trustee_fidelity(&ddos_train, &ddos_test, 2, ddos_app::feature_names());
    let concepts = ddos_concepts();
    let (aos, ahq) = agua_fidelities(&concepts, 2, &ddos_train, &ddos_test);
    rows.push(Row {
        application: "DDoS Detection".into(),
        trustee_full: tf,
        trustee_pruned: tp,
        agua_open_source: aos,
        agua_high_quality: ahq,
    });

    println!(
        "\n{:<16} {:>13} {:>15} {:>17} {:>14}",
        "Application", "Trustee Full", "Trustee Pruned", "Agua (Llama-cls)", "Agua (GPT-cls)"
    );
    println!("{}", "-".repeat(80));
    for r in &rows {
        println!(
            "{:<16} {:>13.3} {:>15.3} {:>17.3} {:>14.3}",
            r.application,
            r.trustee_full,
            r.trustee_pruned,
            r.agua_open_source,
            r.agua_high_quality
        );
    }
    println!("\nPaper Table 2 for reference:");
    println!("  ABR   — Trustee 0.946/0.949, Agua 0.982/0.983");
    println!("  CC    — Trustee 0.215/0.235, Agua 0.932/0.936");
    println!("  DDoS  — Trustee 0.991/0.977, Agua 0.996/1.000");

    save_json("table2_fidelity", &rows);
}
