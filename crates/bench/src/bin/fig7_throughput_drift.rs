//! **Figure 7** — The raw-variable view of the same drift as Fig. 5: the
//! throughput CDFs of the 2021 training traces vs the 2024 deployment
//! traces. The CDF moves but — as the paper argues — says nothing about
//! the *nature* of the shift; that is Fig. 5's job.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua_app::codec::object;
use agua_bench::report::empirical_cdf;
use agua_bench::ExperimentRunner;
use serde_json::Value;

fn per_trace_means(era: DatasetEra, count: usize, seed: u64) -> Vec<f32> {
    era.generate_traces(count, 300, seed).iter().map(|t| t.mean_mbps()).collect()
}

fn cdf_value(cdf: &[(f32, f32)]) -> Value {
    Value::Array(
        cdf.iter()
            .map(|&(x, p)| {
                Value::Array(vec![Value::Number(f64::from(x)), Value::Number(f64::from(p))])
            })
            .collect(),
    )
}

fn main() {
    let runner = ExperimentRunner::new("Figure 7", "Throughput distribution drift, 2021 vs 2024");

    let m2021 = per_trace_means(DatasetEra::Train2021, 200, 7);
    let m2024 = per_trace_means(DatasetEra::Deploy2024, 200, 8);
    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;

    let cdf21 = empirical_cdf(&m2021, 20);
    let cdf24 = empirical_cdf(&m2024, 20);

    println!("\nper-trace mean throughput CDFs (Mbps):");
    println!("{:>8} {:>10} {:>10}", "Mbps", "2021 CDF", "2024 CDF");
    let interp = |cdf: &[(f32, f32)], x: f32| -> f32 {
        if x <= cdf[0].0 {
            return 0.0;
        }
        for w in cdf.windows(2) {
            if x <= w[1].0 {
                let t = (x - w[0].0) / (w[1].0 - w[0].0).max(1e-9);
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        1.0
    };
    for i in 0..=12 {
        let x = i as f32 * 0.5;
        println!("{x:>8.1} {:>10.3} {:>10.3}", interp(&cdf21, x), interp(&cdf24, x));
    }
    println!(
        "\nmean throughput: 2021 = {:.2} Mbps, 2024 = {:.2} Mbps (drift upward \
         and wider, matching the paper's Puffer observation)",
        mean(&m2021),
        mean(&m2024)
    );
    println!(
        "The CDF shows *that* the distribution changed, not *why* — \
         run fig5_concept_shift for the concept-level diagnosis."
    );

    runner.finish(
        "fig7_throughput_drift",
        &object(vec![
            ("cdf_2021", cdf_value(&cdf21)),
            ("cdf_2024", cdf_value(&cdf24)),
            ("mean_2021", Value::Number(f64::from(mean(&m2021)))),
            ("mean_2024", Value::Number(f64::from(mean(&m2024)))),
        ]),
    );
}
