//! **Figure 9** — Aurora's behaviour over time under cross traffic, with
//! Agua's batched explanations tagging the dominant concept per interval.
//!
//! Paper shape: the controller holds stable throughput while no 'Volatile
//! Network Conditions' are perceived, cuts sharply on 'Rapidly Increasing
//! Latency' as the competing flow arrives, and recovers alongside
//! 'Decreasing Packet Loss' / recovering latency.

#![forbid(unsafe_code)]

use agua::explain::concept_intensities;
use agua_app::codec::object;
use agua_app::{RolloutSpec, CC};
use agua_bench::report::sparkline;
use agua_bench::ExperimentRunner;
use agua_engine::FitSpec;
use agua_nn::Matrix;
use cc_env::{CapacityProcess, CcSimulator, LinkConfig, LinkPattern};
use serde_json::Value;

fn main() {
    let runner = ExperimentRunner::new("Figure 9", "CC behaviour timeline with dominant concepts");

    println!("\ntraining Aurora-style controller and fitting Agua…");
    let variant = CC.variant();
    let spec = FitSpec {
        controller_seed: 21,
        rollout: RolloutSpec::new(runner.size(2000, 400), 22),
        ..FitSpec::standard(0)
    };
    let fitted = runner.fit(&CC, &spec);
    let controller = &fitted.controller;
    let model = &fitted.model;

    // Roll out under the paper's cross-traffic workload.
    println!("rolling out under periodic cross traffic…");
    let pattern =
        LinkPattern::CrossTraffic { mbps: 8.0, cross_fraction: 0.55, on_s: 4.0, off_s: 6.0 };
    let cap = CapacityProcess::generate_seeded(pattern, 600, 5);
    let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 4.0, variant.history());
    for _ in 0..variant.history() {
        sim.step_at_current_rate();
    }
    let mut throughput = Vec::new();
    let mut capacity = Vec::new();
    let mut embeddings: Vec<Vec<f32>> = Vec::new();
    while !sim.done() {
        capacity.push(sim.current_capacity());
        let f = sim.observation().features(variant.with_avg_latency());
        let x = Matrix::row_vector(&f);
        let (h, logits) = controller.embeddings_and_logits(&x);
        embeddings.push(h.row(0).to_vec());
        let stats = sim.step(logits.argmax_row(0));
        throughput.push(stats.delivered_mbps);
    }

    // Relative concept intensities per 2-second (20-MI) interval: each
    // window's δ intensities are z-scored against the whole rollout, so
    // the tags name what is *distinctive* about the interval (globally
    // constant concepts cancel out).
    const WINDOW: usize = 20;
    let window_ranges: Vec<(usize, usize)> = (0..throughput.len())
        .step_by(WINDOW)
        .map(|s| (s, (s + WINDOW).min(throughput.len())))
        .collect();
    let window_intensities: Vec<Vec<f32>> = window_ranges
        .iter()
        .map(|&(s, e)| concept_intensities(model, &Matrix::from_rows(&embeddings[s..e])))
        .collect();
    let c = model.concepts();
    let n_w = window_intensities.len() as f32;
    let mut mean = vec![0.0f32; c];
    for row in &window_intensities {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v / n_w;
        }
    }
    let mut std = vec![0.0f32; c];
    for row in &window_intensities {
        for i in 0..c {
            std[i] += (row[i] - mean[i]) * (row[i] - mean[i]) / n_w;
        }
    }
    for s in &mut std {
        *s = s.sqrt().max(1e-6);
    }

    let mut tags = Vec::new();
    println!(
        "\n{:>6}  {:>8}  {:>8}  {:<34} runner-up",
        "MI", "tput", "capacity", "dominant concept"
    );
    println!("{}", "-".repeat(96));
    for (w, &(start, end)) in window_ranges.iter().enumerate() {
        let mean_t: f32 = throughput[start..end].iter().sum::<f32>() / (end - start) as f32;
        let mean_c: f32 = capacity[start..end].iter().sum::<f32>() / (end - start) as f32;
        let z: Vec<f32> = window_intensities[w]
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - mean[i]) / std[i])
            .collect();
        let mut order: Vec<usize> = (0..c).collect();
        order.sort_by(|&a, &b| z[b].partial_cmp(&z[a]).expect("finite"));
        let top: Vec<String> =
            order.iter().take(2).map(|&i| model.concept_names[i].clone()).collect();
        println!(
            "{start:>6}  {mean_t:>8.2}  {mean_c:>8.2}  {:<34} {}",
            top[0],
            top.get(1).cloned().unwrap_or_default()
        );
        tags.push(object(vec![
            ("dominant_concept", Value::String(top[0].clone())),
            ("mean_capacity", Value::Number(f64::from(mean_c))),
            ("mean_throughput", Value::Number(f64::from(mean_t))),
            ("mi_start", Value::Number(start as f64)),
            ("runner_up", Value::String(top.get(1).cloned().unwrap_or_default())),
        ]));
    }

    println!("\nthroughput: {}", sparkline(&throughput));
    println!("capacity:   {}", sparkline(&capacity));
    println!(
        "\nPaper shape: stable phases ↔ no volatility concepts; cuts ↔ \
         'Rapidly Increasing Latency'; recovery ↔ decreasing loss/latency."
    );

    runner.finish("fig9_cc_timeline", &Value::Array(tags));
}
