//! **Figure 8** — Concept-driven retraining vs traditional retraining.
//!
//! After the 2021 → 2024 distribution shift (Fig. 5), the operator can
//! either retrain the controller on the *entire* 2024 dataset or — using
//! Agua's concept tags — only on the traces exhibiting the concepts that
//! increased. The paper finds concept-driven retraining converges higher
//! and more stably, echoing prior evidence that RL training suffers when
//! the input-trace distribution is wide.
//!
//! The controller being retrained is a deliberately under-trained build
//! (2 behaviour-cloning epochs), giving the policy-gradient procedure
//! genuine headroom — the stand-in for the paper's stale production
//! controller.

#![forbid(unsafe_code)]

use abr_env::{DatasetEra, TraceFamily};
use agua::concepts::abr_concepts;
use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua::lifecycle::retrain::select_for_retraining;
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_bench::apps::{abr_app, labeler_for, LlmVariant};
use agua_bench::report::{banner, save_json, sparkline};
use agua_controllers::abr::{
    collect_teacher_dataset, evaluate, reinforce_finetune, train_controller_epochs,
};
use agua_nn::Matrix;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig8Result {
    base_qoe_all: f32,
    selected_traces: usize,
    total_traces: usize,
    concept_curve_all: Vec<f32>,
    traditional_curve_all: Vec<f32>,
    concept_curve_slow: Vec<f32>,
    traditional_curve_slow: Vec<f32>,
}

const ITERATIONS: usize = 40;
const EPISODES_PER_ITER: usize = 16;
const CHUNKS: usize = 30;
const LR: f32 = 7e-4;

fn main() {
    banner("Figure 8", "Concept-driven vs traditional retraining");

    // A deliberately under-trained 2021 controller: the stale build with
    // headroom that retraining is supposed to recover.
    println!("\ntraining the (stale) base controller on 2021 data…");
    let samples = collect_teacher_dataset(DatasetEra::Train2021, 60, abr_app::CHUNKS, 11);
    let base = train_controller_epochs(&samples, 2, 11);

    // Fit Agua to the deployed controller.
    println!("fitting Agua to the deployed controller…");
    let train = abr_app::rollout(&base, DatasetEra::Train2021, 40, 12);
    let concepts = abr_concepts();
    let labeler = labeler_for(&concepts, LlmVariant::HighQuality);
    let concept_labels = labeler.label_batch(&train.sections, 42);
    let dataset = SurrogateDataset {
        embeddings: train.embeddings.clone(),
        concept_labels,
        outputs: train.outputs.clone(),
    };
    let model = AguaModel::fit(
        &concepts,
        labeler.quantizer().classes(),
        abr_env::LEVELS,
        &dataset,
        &TrainParams::tuned(),
    );

    // Tag 2024 traces and find the under-represented concepts.
    println!("tagging the 2024 dataset at the concept level…");
    let data_2021 = abr_app::rollout(&base, DatasetEra::Train2021, 50, 101);
    let data_2024 = abr_app::rollout(&base, DatasetEra::Deploy2024, 50, 202);
    let batches = |d: &agua_bench::AppData| -> Vec<Matrix> {
        (0..d.trace_count()).map(|t| d.trace_embeddings(t)).collect()
    };
    let (tags_2021, tags_2024) =
        tag_datasets(&model, &batches(&data_2021), &batches(&data_2024), 3);
    let names = concepts.names();
    let shifts = detect_shift(
        &concept_proportions(&tags_2021, &names),
        &concept_proportions(&tags_2024, &names),
        &names,
    );
    let selected = select_for_retraining(&tags_2024, &shifts, 0.03);
    println!(
        "  {} / {} 2024 traces carry under-represented concepts",
        selected.len(),
        tags_2024.len()
    );

    // Retraining pools: the trace ids used to build data_2024 (seed 202)
    // regenerate the same traces.
    let traces_2024 = DatasetEra::Deploy2024.generate_traces(50, abr_app::CHUNKS * 6, 202);
    let selected_traces: Vec<_> = selected.iter().map(|&i| traces_2024[i].clone()).collect();
    let eval_all = DatasetEra::Deploy2024.generate_traces(20, CHUNKS * 6, 999);
    let eval_slow: Vec<_> = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(998);
        (0..12).map(|_| TraceFamily::ThreeG.generate(CHUNKS * 6, &mut rng)).collect()
    };
    let base_qoe = evaluate(&base, &eval_all, CHUNKS, 5);
    println!("  base controller QoE on 2024 eval: {base_qoe:.3}");

    println!("\nretraining (concept-driven, {} traces)…", selected_traces.len());
    let mut c1 = base.clone();
    let concept_curve_all = reinforce_finetune(
        &mut c1,
        &selected_traces,
        &eval_all,
        ITERATIONS,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    println!("retraining (traditional, {} traces)…", traces_2024.len());
    let mut t1 = base.clone();
    let traditional_curve_all = reinforce_finetune(
        &mut t1,
        &traces_2024,
        &eval_all,
        ITERATIONS,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    println!("evaluating on slow-network traces…");
    let mut c2 = base.clone();
    let concept_curve_slow = reinforce_finetune(
        &mut c2,
        &selected_traces,
        &eval_slow,
        ITERATIONS,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    let mut t2 = base.clone();
    let traditional_curve_slow = reinforce_finetune(
        &mut t2,
        &traces_2024,
        &eval_slow,
        ITERATIONS,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );

    let last = |v: &[f32]| v.last().copied().unwrap_or(0.0);
    println!("\nQoE on all 2024 traces (stale baseline {base_qoe:.3}):");
    println!(
        "  concept-driven : {} final {:.3}",
        sparkline(&concept_curve_all),
        last(&concept_curve_all)
    );
    println!(
        "  traditional    : {} final {:.3}",
        sparkline(&traditional_curve_all),
        last(&traditional_curve_all)
    );
    println!("QoE on slow traces:");
    println!(
        "  concept-driven : {} final {:.3}",
        sparkline(&concept_curve_slow),
        last(&concept_curve_slow)
    );
    println!(
        "  traditional    : {} final {:.3}",
        sparkline(&traditional_curve_slow),
        last(&traditional_curve_slow)
    );

    // Stability: cumulative dips below the running best.
    let dips = |v: &[f32]| {
        let mut best = f32::MIN;
        let mut dip = 0.0f32;
        for &x in v {
            best = best.max(x);
            dip += (best - x).max(0.0);
        }
        dip / v.len() as f32
    };
    println!(
        "\nmean dip below running best (instability): concept-driven {:.4} vs traditional {:.4}",
        dips(&concept_curve_all),
        dips(&traditional_curve_all)
    );
    println!("Paper shape: concept-driven converges faster and more steadily.");

    save_json(
        "fig8_retraining",
        &Fig8Result {
            base_qoe_all: base_qoe,
            selected_traces: selected_traces.len(),
            total_traces: traces_2024.len(),
            concept_curve_all,
            traditional_curve_all,
            concept_curve_slow,
            traditional_curve_slow,
        },
    );
}
