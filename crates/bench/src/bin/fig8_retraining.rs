//! **Figure 8** — Concept-driven retraining vs traditional retraining.
//!
//! After the 2021 → 2024 distribution shift (Fig. 5), the operator can
//! either retrain the controller on the *entire* 2024 dataset or — using
//! Agua's concept tags — only on the traces exhibiting the concepts that
//! increased. The paper finds concept-driven retraining converges higher
//! and more stably, echoing prior evidence that RL training suffers when
//! the input-trace distribution is wide.
//!
//! The controller being retrained is a deliberately under-trained build
//! (2 behaviour-cloning epochs), giving the policy-gradient procedure
//! genuine headroom — the stand-in for the paper's stale production
//! controller.

#![forbid(unsafe_code)]

use abr_env::{DatasetEra, TraceFamily};
use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua::lifecycle::retrain::select_for_retraining;
use agua::surrogate::TrainParams;
use agua_app::codec::{f32s_value, object, u64_value};
use agua_app::{abr_app, Application, LlmVariant, RolloutSpec, ABR};
use agua_bench::report::sparkline;
use agua_bench::ExperimentRunner;
use agua_controllers::abr::{
    collect_teacher_dataset, evaluate, reinforce_finetune, train_controller_epochs,
};
use agua_nn::Matrix;
use serde_json::Value;

const ITERATIONS: usize = 40;
const EPISODES_PER_ITER: usize = 16;
const CHUNKS: usize = 30;
const LR: f32 = 7e-4;

fn main() {
    let runner = ExperimentRunner::new("Figure 8", "Concept-driven vs traditional retraining");
    let store = runner.store();

    // A deliberately under-trained 2021 controller: the stale build with
    // headroom that retraining is supposed to recover. Not the registry
    // controller, so it caches under its own bespoke spec.
    println!("\ntraining the (stale) base controller on 2021 data…");
    let stale_spec = object(vec![
        ("app", Value::String(ABR.name().to_string())),
        ("bc_epochs", u64_value(2)),
        ("seed", u64_value(11)),
        ("teacher_traces", u64_value(60)),
    ]);
    let base = store.get_or_compute("controller", &stale_spec, runner.obs(), || {
        let samples = collect_teacher_dataset(DatasetEra::Train2021, 60, abr_app::CHUNKS, 11);
        train_controller_epochs(&samples, 2, 11)
    });

    // Fit Agua to the deployed controller.
    println!("fitting Agua to the deployed controller…");
    let n_iter = runner.size(ITERATIONS, 8);
    let train = store.rollout(
        &ABR,
        &base,
        &RolloutSpec::on("train2021", 40 * abr_app::CHUNKS, 12),
        runner.obs(),
    );
    let (model, _) = store.surrogate(
        &ABR,
        LlmVariant::HighQuality,
        &TrainParams::tuned(),
        42,
        &train,
        runner.obs(),
    );

    // Tag 2024 traces and find the under-represented concepts.
    println!("tagging the 2024 dataset at the concept level…");
    let data_2021 = store.rollout(
        &ABR,
        &base,
        &RolloutSpec::on("train2021", 50 * abr_app::CHUNKS, 101),
        runner.obs(),
    );
    let data_2024 = store.rollout(
        &ABR,
        &base,
        &RolloutSpec::on("deploy2024", 50 * abr_app::CHUNKS, 202),
        runner.obs(),
    );
    let batches = |d: &agua_app::AppData| -> Vec<Matrix> {
        (0..d.trace_count()).map(|t| d.trace_embeddings(t)).collect()
    };
    let (tags_2021, tags_2024) =
        tag_datasets(&model, &batches(&data_2021), &batches(&data_2024), 3);
    let names = ABR.concepts().names();
    let shifts = detect_shift(
        &concept_proportions(&tags_2021, &names),
        &concept_proportions(&tags_2024, &names),
        &names,
    );
    let selected = select_for_retraining(&tags_2024, &shifts, 0.03);
    println!(
        "  {} / {} 2024 traces carry under-represented concepts",
        selected.len(),
        tags_2024.len()
    );

    // Retraining pools: the trace ids used to build data_2024 (seed 202)
    // regenerate the same traces.
    let traces_2024 = DatasetEra::Deploy2024.generate_traces(50, abr_app::CHUNKS * 6, 202);
    let selected_traces: Vec<_> = selected.iter().map(|&i| traces_2024[i].clone()).collect();
    let eval_all = DatasetEra::Deploy2024.generate_traces(20, CHUNKS * 6, 999);
    let eval_slow: Vec<_> = {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(998);
        (0..12).map(|_| TraceFamily::ThreeG.generate(CHUNKS * 6, &mut rng)).collect()
    };
    let base_qoe = evaluate(&base, &eval_all, CHUNKS, 5);
    println!("  base controller QoE on 2024 eval: {base_qoe:.3}");

    println!("\nretraining (concept-driven, {} traces)…", selected_traces.len());
    let mut c1 = base.value.clone();
    let concept_curve_all = reinforce_finetune(
        &mut c1,
        &selected_traces,
        &eval_all,
        n_iter,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    println!("retraining (traditional, {} traces)…", traces_2024.len());
    let mut t1 = base.value.clone();
    let traditional_curve_all = reinforce_finetune(
        &mut t1,
        &traces_2024,
        &eval_all,
        n_iter,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    println!("evaluating on slow-network traces…");
    let mut c2 = base.value.clone();
    let concept_curve_slow = reinforce_finetune(
        &mut c2,
        &selected_traces,
        &eval_slow,
        n_iter,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );
    let mut t2 = base.value.clone();
    let traditional_curve_slow = reinforce_finetune(
        &mut t2,
        &traces_2024,
        &eval_slow,
        n_iter,
        EPISODES_PER_ITER,
        CHUNKS,
        LR,
        77,
    );

    let last = |v: &[f32]| v.last().copied().unwrap_or(0.0);
    println!("\nQoE on all 2024 traces (stale baseline {base_qoe:.3}):");
    println!(
        "  concept-driven : {} final {:.3}",
        sparkline(&concept_curve_all),
        last(&concept_curve_all)
    );
    println!(
        "  traditional    : {} final {:.3}",
        sparkline(&traditional_curve_all),
        last(&traditional_curve_all)
    );
    println!("QoE on slow traces:");
    println!(
        "  concept-driven : {} final {:.3}",
        sparkline(&concept_curve_slow),
        last(&concept_curve_slow)
    );
    println!(
        "  traditional    : {} final {:.3}",
        sparkline(&traditional_curve_slow),
        last(&traditional_curve_slow)
    );

    // Stability: cumulative dips below the running best.
    let dips = |v: &[f32]| {
        let mut best = f32::MIN;
        let mut dip = 0.0f32;
        for &x in v {
            best = best.max(x);
            dip += (best - x).max(0.0);
        }
        dip / v.len() as f32
    };
    println!(
        "\nmean dip below running best (instability): concept-driven {:.4} vs traditional {:.4}",
        dips(&concept_curve_all),
        dips(&traditional_curve_all)
    );
    println!("Paper shape: concept-driven converges faster and more steadily.");

    runner.finish(
        "fig8_retraining",
        &object(vec![
            ("base_qoe_all", Value::Number(f64::from(base_qoe))),
            ("concept_curve_all", f32s_value(&concept_curve_all)),
            ("concept_curve_slow", f32s_value(&concept_curve_slow)),
            ("selected_traces", Value::Number(selected_traces.len() as f64)),
            ("total_traces", Value::Number(traces_2024.len() as f64)),
            ("traditional_curve_all", f32s_value(&traditional_curve_all)),
            ("traditional_curve_slow", f32s_value(&traditional_curve_slow)),
        ]),
    );
}
