//! **Parallel backend benchmark** — surrogate training and batched
//! explanation at 1 vs N worker threads, plus a δ-fit-shaped matmul
//! sweep comparing the persistent-pool tiled kernels against the
//! retired per-op scoped-spawn scalar dispatcher.
//!
//! Verifies that the deterministic row-partitioned backend produces
//! byte-identical models and explanations at every thread count, then
//! records the measured wall-clock speedups — timed through the
//! `agua-obs` span API, so the numbers persisted here are the same
//! readings any attached subscriber sees — plus the kernel-dispatch
//! counter snapshot, in `results/BENCH_parallel.json` (and, on a full
//! run, the repo-root `BENCH_parallel.json` committed as the record of
//! this machine's speedups).
//!
//! `--smoke` runs only the matmul sweep at reduced repetitions and
//! skips the repo-root write: fast enough for CI, still producing a
//! schema-complete `results/BENCH_parallel.json` for validation.

#![forbid(unsafe_code)]

use agua::explain;
use agua::surrogate::AguaModel;
use agua_bench::report::{banner, save_json};
use agua_bench::synth::{bench_params, synthetic_surrogate, SynthSpec};
use agua_nn::parallel::{reference, with_thread_config, with_threads, ThreadConfig};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{span_end, span_start, Metrics, Stage};
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

#[derive(Debug)]
struct StageResult {
    stage: String,
    threads: usize,
    seconds: f64,
    speedup_vs_1_thread: f64,
    byte_identical_to_1_thread: bool,
}

impl Serialize for StageResult {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StageResult", 5)?;
        s.serialize_field("stage", &self.stage)?;
        s.serialize_field("threads", &self.threads)?;
        s.serialize_field("seconds", &self.seconds)?;
        s.serialize_field("speedup_vs_1_thread", &self.speedup_vs_1_thread)?;
        s.serialize_field("byte_identical_to_1_thread", &self.byte_identical_to_1_thread)?;
        s.end()
    }
}

/// One shape of the δ-fit matmul sweep: the four timed variants
/// factor the win into dispatch (pool vs scoped spawn) and kernel
/// (tiled vs scalar) contributions.
#[derive(Debug)]
struct SweepShape {
    rows: usize,
    inner: usize,
    cols: usize,
    reps: usize,
    /// Retired dispatcher + untiled kernel at 4 workers — the pre-pool
    /// baseline this PR is measured against.
    scoped_scalar_4t_secs: f64,
    /// Persistent pool + tiled kernel at 4 threads.
    pool_tiled_4t_secs: f64,
    /// Sequential untiled kernel (no dispatch at all).
    seq_scalar_secs: f64,
    /// Sequential tiled kernel (isolates the kernel win).
    seq_tiled_secs: f64,
    speedup_pool_tiled_vs_scoped_scalar: f64,
}

impl Serialize for SweepShape {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SweepShape", 9)?;
        s.serialize_field("rows", &self.rows)?;
        s.serialize_field("inner", &self.inner)?;
        s.serialize_field("cols", &self.cols)?;
        s.serialize_field("reps", &self.reps)?;
        s.serialize_field("scoped_scalar_4t_secs", &self.scoped_scalar_4t_secs)?;
        s.serialize_field("pool_tiled_4t_secs", &self.pool_tiled_4t_secs)?;
        s.serialize_field("seq_scalar_secs", &self.seq_scalar_secs)?;
        s.serialize_field("seq_tiled_secs", &self.seq_tiled_secs)?;
        s.serialize_field(
            "speedup_pool_tiled_vs_scoped_scalar",
            &self.speedup_pool_tiled_vs_scoped_scalar,
        )?;
        s.end()
    }
}

/// The persisted report: per-stage timings, the matmul sweep, and the
/// kernel-dispatch counters aggregated by the `Metrics` subscriber over
/// the whole run.
#[derive(Debug)]
struct BenchParallelReport {
    /// "full" or "smoke" (`--smoke` skips the training stages).
    mode: String,
    stages: Vec<StageResult>,
    /// δ-fit-shaped matmuls, pool+tiled vs scoped-spawn scalar.
    matmul_sweep: Vec<SweepShape>,
    /// Total-time speedup of the pool+tiled path over the scoped-spawn
    /// scalar baseline across the whole sweep at 4 threads.
    speedup_pool_tiled_vs_scoped_scalar: f64,
    /// Deterministic dispatch/MAC counters (`kernel.*`), identical at
    /// any thread count.
    kernel_dispatch_counters: BTreeMap<String, u64>,
    /// Scheduling counters (parallel vs sequential dispatches, pool
    /// dispatches, queue depths, peak worker counts) — these
    /// legitimately vary with the thread counts exercised above.
    kernel_scheduling: BTreeMap<String, u64>,
}

impl Serialize for BenchParallelReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("BenchParallelReport", 6)?;
        s.serialize_field("mode", &self.mode)?;
        s.serialize_field("stages", &self.stages)?;
        s.serialize_field("matmul_sweep", &self.matmul_sweep)?;
        s.serialize_field(
            "speedup_pool_tiled_vs_scoped_scalar",
            &self.speedup_pool_tiled_vs_scoped_scalar,
        )?;
        s.serialize_field("kernel_dispatch_counters", &self.kernel_dispatch_counters)?;
        s.serialize_field("kernel_scheduling", &self.kernel_scheduling)?;
        s.end()
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn model_bits(model: &AguaModel) -> Vec<u32> {
    let mut out = bits(model.output_mapping.weights());
    out.extend(bits(model.output_mapping.bias()));
    out
}

/// Deterministic dense test matrix for the sweep.
fn sweep_mat(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 7 + salt * 13) % 101) as f32 / 50.0 - 1.0)
}

/// Times `f` over `reps` repetitions (after one untimed warm-up) and
/// returns the *minimum* per-rep time: the steady-state cost with
/// scheduler noise and interference spikes filtered out, which is the
/// stable statistic on a shared machine.
fn time_reps(reps: usize, mut f: impl FnMut() -> Matrix) -> (f64, Matrix) {
    let mut last = f(); // warm-up rep, also the checked output
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        last = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, last)
}

/// The matmul sweep: δ-fit-shaped products (batch × emb → hidden,
/// batch × hidden → C·k logits) at 4 threads, pool+tiled vs the
/// retired scoped-spawn scalar path.
fn run_sweep(reps: usize) -> (Vec<SweepShape>, f64) {
    const SHAPES: [(usize, usize, usize); 4] =
        [(100, 128, 256), (250, 128, 256), (500, 128, 256), (500, 256, 24)];
    const THREADS: usize = 4;
    let forced = ThreadConfig { threads: THREADS, min_flops: 0 };

    println!("\n[matmul sweep] pool+tiled vs scoped-spawn scalar, {THREADS} threads, {reps} reps");
    let mut rows = Vec::new();
    let mut total_scoped = 0.0f64;
    let mut total_pool = 0.0f64;
    for &(m, k, n) in &SHAPES {
        let a = sweep_mat(m, k, 1);
        let b = sweep_mat(k, n, 2);

        let (scoped_secs, scoped_out) =
            time_reps(reps, || reference::scoped_scalar_matmul(&a, &b, THREADS));
        let (pool_secs, pool_out) =
            time_reps(reps, || with_thread_config(forced, || agua_nn::par_matmul(&a, &b)));
        let (seq_scalar_secs, seq_out) = time_reps(reps, || a.matmul_reference(&b));
        let (seq_tiled_secs, tiled_out) = time_reps(reps, || a.matmul(&b));

        assert_eq!(bits(&seq_out), bits(&pool_out), "pool+tiled must match sequential scalar");
        assert_eq!(bits(&seq_out), bits(&scoped_out), "scoped scalar must match sequential");
        assert_eq!(bits(&seq_out), bits(&tiled_out), "tiled kernel must match scalar");

        let speedup = scoped_secs / pool_secs;
        total_scoped += scoped_secs;
        total_pool += pool_secs;
        println!(
            "  {m}x{k}x{n}: scoped_scalar={:.0}us pool_tiled={:.0}us (seq scalar={:.0}us tiled={:.0}us)  speedup={speedup:.2}x",
            scoped_secs * 1e6,
            pool_secs * 1e6,
            seq_scalar_secs * 1e6,
            seq_tiled_secs * 1e6,
        );
        rows.push(SweepShape {
            rows: m,
            inner: k,
            cols: n,
            reps,
            scoped_scalar_4t_secs: scoped_secs,
            pool_tiled_4t_secs: pool_secs,
            seq_scalar_secs,
            seq_tiled_secs,
            speedup_pool_tiled_vs_scoped_scalar: speedup,
        });
    }
    let overall = total_scoped / total_pool;
    println!("  overall speedup (total time): {overall:.2}x");
    (rows, overall)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "BENCH parallel",
        "1-thread vs N-thread speedup of the deterministic backend (pool + tiled kernels)",
    );
    let metrics = Rc::new(Metrics::new());
    let mut rows: Vec<StageResult> = Vec::new();

    if !smoke {
        let spec = SynthSpec::large();
        let (concepts, dataset) = synthetic_surrogate(spec);
        let params = bench_params(spec.seed);
        let thread_counts = [1usize, 2, 4];

        // --- Stage 1: surrogate training (δ then Ω, matmul-dominated).
        println!(
            "\n[fit] n={} emb={} hidden={} cm_batch={}",
            spec.n, spec.emb_dim, params.cm_hidden, params.cm_batch
        );
        let mut baseline_model_bits: Vec<u32> = Vec::new();
        let mut baseline_model: Option<AguaModel> = None;
        let mut fit_base_secs = 0.0f64;
        for &threads in &thread_counts {
            let span = span_start(&*metrics, Stage::Custom("surrogate_fit"));
            let model = with_scoped_subscriber(metrics.clone(), || {
                with_threads(threads, || {
                    AguaModel::fit(&concepts, spec.k, spec.n_outputs, &dataset, &params)
                })
            });
            let secs = span_end(&*metrics, span);
            let mb = model_bits(&model);
            let identical = if threads == 1 {
                fit_base_secs = secs;
                baseline_model_bits = mb;
                baseline_model = Some(model);
                true
            } else {
                mb == baseline_model_bits
            };
            let speedup = fit_base_secs / secs;
            println!(
                "  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}"
            );
            rows.push(StageResult {
                stage: "surrogate_fit".into(),
                threads,
                seconds: secs,
                speedup_vs_1_thread: speedup,
                byte_identical_to_1_thread: identical,
            });
        }
        let model = baseline_model.expect("1-thread fit ran first");

        // --- Stage 2: batched explanation over the full dataset.
        println!("\n[batched explanation] n={}", spec.n);
        const REPS: usize = 20;
        let mut baseline_weights: Vec<u32> = Vec::new();
        let mut explain_base_secs = 0.0f64;
        for &threads in &thread_counts {
            let span = span_start(&*metrics, Stage::Custom("batched_explanation"));
            let mut last = None;
            for _ in 0..REPS {
                last = Some(with_scoped_subscriber(metrics.clone(), || {
                    with_threads(threads, || explain::batched(&model, &dataset.embeddings, 0))
                }));
            }
            let secs = span_end(&*metrics, span);
            let explanation = last.expect("at least one rep");
            let weight_bits: Vec<u32> =
                explanation.contributions.iter().map(|c| c.weight.to_bits()).collect();
            let identical = if threads == 1 {
                explain_base_secs = secs;
                baseline_weights = weight_bits;
                true
            } else {
                weight_bits == baseline_weights
            };
            let speedup = explain_base_secs / secs;
            println!(
                "  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}"
            );
            rows.push(StageResult {
                stage: "batched_explanation".into(),
                threads,
                seconds: secs,
                speedup_vs_1_thread: speedup,
                byte_identical_to_1_thread: identical,
            });
        }

        assert!(
            rows.iter().all(|r| r.byte_identical_to_1_thread),
            "parallel backend must be byte-identical to the sequential path"
        );
    }

    // --- Stage 3: the δ-fit-shaped matmul sweep (runs in both modes;
    // attach the metrics subscriber so pool-dispatch counters show up).
    let (sweep, overall_speedup) =
        with_scoped_subscriber(metrics.clone(), || run_sweep(if smoke { 10 } else { 30 }));

    let snapshot = metrics.snapshot();
    let kernel = snapshot.kernel_counters();
    println!("\n[kernel dispatch counters]");
    for (name, value) in &kernel {
        println!("  {name:<40} {value}");
    }

    let report = BenchParallelReport {
        mode: if smoke { "smoke" } else { "full" }.into(),
        stages: rows,
        matmul_sweep: sweep,
        speedup_pool_tiled_vs_scoped_scalar: overall_speedup,
        kernel_dispatch_counters: kernel,
        kernel_scheduling: snapshot.scheduling.clone(),
    };
    save_json("BENCH_parallel", &report);
    if !smoke {
        // A full run also refreshes the committed repo-root record.
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_parallel.json");
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).expect("write repo-root report");
        println!("wrote {}", path.display());
    }
    println!("\nwrote results/BENCH_parallel.json");
}
