//! **Parallel backend benchmark** — surrogate training and batched
//! explanation at 1 vs N worker threads.
//!
//! Verifies that the deterministic row-partitioned backend produces
//! byte-identical models and explanations at every thread count, then
//! records the measured wall-clock speedups — timed through the
//! `agua-obs` span API, so the numbers persisted here are the same
//! readings any attached subscriber sees — plus the kernel-dispatch
//! counter snapshot, in `results/BENCH_parallel.json`.

use agua::explain;
use agua::surrogate::AguaModel;
use agua_bench::report::{banner, save_json};
use agua_bench::synth::{bench_params, synthetic_surrogate, SynthSpec};
use agua_nn::parallel::with_threads;
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{span_end, span_start, Metrics, Stage};
use serde::Serialize;
use std::collections::BTreeMap;
use std::rc::Rc;

#[derive(Debug, Serialize)]
struct StageResult {
    stage: String,
    threads: usize,
    seconds: f64,
    speedup_vs_1_thread: f64,
    byte_identical_to_1_thread: bool,
}

/// The persisted report: per-stage timings plus the kernel-dispatch
/// counters aggregated by the `Metrics` subscriber over the whole run.
#[derive(Debug, Serialize)]
struct BenchParallelReport {
    stages: Vec<StageResult>,
    /// Deterministic dispatch/MAC counters (`kernel.*`), identical at
    /// any thread count.
    kernel_dispatch_counters: BTreeMap<String, u64>,
    /// Scheduling counters (parallel vs sequential dispatches, peak
    /// worker counts) — these legitimately vary with the thread counts
    /// exercised above.
    kernel_scheduling: BTreeMap<String, u64>,
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn model_bits(model: &AguaModel) -> Vec<u32> {
    let mut out = bits(model.output_mapping.weights());
    out.extend(bits(model.output_mapping.bias()));
    out
}

fn main() {
    banner("BENCH parallel", "1-thread vs N-thread speedup of the deterministic backend");
    let spec = SynthSpec::large();
    let (concepts, dataset) = synthetic_surrogate(spec);
    let params = bench_params(spec.seed);
    let thread_counts = [1usize, 2, 4];
    let mut rows: Vec<StageResult> = Vec::new();
    let metrics = Rc::new(Metrics::new());

    // --- Stage 1: surrogate training (δ then Ω, matmul-dominated).
    println!(
        "\n[fit] n={} emb={} hidden={} cm_batch={}",
        spec.n, spec.emb_dim, params.cm_hidden, params.cm_batch
    );
    let mut baseline_model_bits: Vec<u32> = Vec::new();
    let mut baseline_model: Option<AguaModel> = None;
    let mut fit_base_secs = 0.0f64;
    for &threads in &thread_counts {
        let span = span_start(&*metrics, Stage::Custom("surrogate_fit"));
        let model = with_scoped_subscriber(metrics.clone(), || {
            with_threads(threads, || {
                AguaModel::fit(&concepts, spec.k, spec.n_outputs, &dataset, &params)
            })
        });
        let secs = span_end(&*metrics, span);
        let mb = model_bits(&model);
        let identical = if threads == 1 {
            fit_base_secs = secs;
            baseline_model_bits = mb;
            baseline_model = Some(model);
            true
        } else {
            mb == baseline_model_bits
        };
        let speedup = fit_base_secs / secs;
        println!("  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}");
        rows.push(StageResult {
            stage: "surrogate_fit".into(),
            threads,
            seconds: secs,
            speedup_vs_1_thread: speedup,
            byte_identical_to_1_thread: identical,
        });
    }
    let model = baseline_model.expect("1-thread fit ran first");

    // --- Stage 2: batched explanation over the full dataset.
    println!("\n[batched explanation] n={}", spec.n);
    const REPS: usize = 20;
    let mut baseline_weights: Vec<u32> = Vec::new();
    let mut explain_base_secs = 0.0f64;
    for &threads in &thread_counts {
        let span = span_start(&*metrics, Stage::Custom("batched_explanation"));
        let mut last = None;
        for _ in 0..REPS {
            last = Some(with_scoped_subscriber(metrics.clone(), || {
                with_threads(threads, || explain::batched(&model, &dataset.embeddings, 0))
            }));
        }
        let secs = span_end(&*metrics, span);
        let explanation = last.expect("at least one rep");
        let weight_bits: Vec<u32> =
            explanation.contributions.iter().map(|c| c.weight.to_bits()).collect();
        let identical = if threads == 1 {
            explain_base_secs = secs;
            baseline_weights = weight_bits;
            true
        } else {
            weight_bits == baseline_weights
        };
        let speedup = explain_base_secs / secs;
        println!("  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}");
        rows.push(StageResult {
            stage: "batched_explanation".into(),
            threads,
            seconds: secs,
            speedup_vs_1_thread: speedup,
            byte_identical_to_1_thread: identical,
        });
    }

    assert!(
        rows.iter().all(|r| r.byte_identical_to_1_thread),
        "parallel backend must be byte-identical to the sequential path"
    );

    let snapshot = metrics.snapshot();
    let kernel = snapshot.kernel_counters();
    println!("\n[kernel dispatch counters]");
    for (name, value) in &kernel {
        println!("  {name:<40} {value}");
    }

    save_json(
        "BENCH_parallel",
        &BenchParallelReport {
            stages: rows,
            kernel_dispatch_counters: kernel,
            kernel_scheduling: snapshot.scheduling.clone(),
        },
    );
    println!("\nwrote results/BENCH_parallel.json");
}
