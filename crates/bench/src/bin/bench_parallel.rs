//! **Parallel backend benchmark** — surrogate training and batched
//! explanation at 1 vs N worker threads, plus a δ-fit-shaped matmul
//! sweep comparing the persistent-pool tiled kernels against the
//! retired per-op scoped-spawn scalar dispatcher.
//!
//! Verifies that the deterministic row-partitioned backend produces
//! byte-identical models and explanations at every thread count, then
//! records the measured wall-clock speedups — minimum per-rep times
//! (interference spikes filtered), with stage spans still emitted
//! through the `agua-obs` span API for any attached subscriber — plus
//! the kernel-dispatch counter snapshot, in
//! `results/BENCH_parallel.json` (and, on a full run, the repo-root
//! `BENCH_parallel.json` committed as the record of this machine's
//! speedups).
//!
//! Four sections beyond the stage timings:
//!
//! - `batched_explanation_vs_reference`: the rewritten batched
//!   explanation against the retired two-forward implementation it
//!   replaced (`explain::batched_reference`) — the regression gate.
//! - `matmul_sweep`: pool+tiled vs scoped-spawn scalar kernels.
//! - `gate_calibration`: each kernel timed sequentially and
//!   pool-dispatched across a ladder of doubling sizes; the measured
//!   crossover is the evidence behind the `breakeven` constants in
//!   `agua_nn::parallel`.
//! - `quantized`: the int8 surrogate's Table-2-style fidelity gate and
//!   its weight-footprint / inference-time trade against `f32`.
//!
//! `--smoke` shrinks the workload (untrained surrogate, reduced reps,
//! no training stage) and skips the repo-root write: fast enough for
//! CI, still producing a schema-complete `results/BENCH_parallel.json`
//! — including a real `batched_explanation` stage — for the `ci.sh`
//! perf gate to validate.

#![forbid(unsafe_code)]

use agua::explain;
use agua::quantized::QuantizedAguaModel;
use agua::surrogate::{AguaModel, ConceptMapping, OutputMapping};
use agua_bench::report::{banner, results_dir, save_json};
use agua_bench::synth::{bench_params, synthetic_surrogate, SynthSpec};
use agua_nn::parallel::{
    breakeven, reference, with_thread_config, with_threads, ThreadConfig, EXP_ELEM_FLOPS,
};
use agua_nn::{Matrix, QuantizedLinear};
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{span_end, span_start, Fanout, Metrics, Stage, Subscriber, TraceWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct StageResult {
    stage: String,
    threads: usize,
    seconds: f64,
    speedup_vs_1_thread: f64,
    byte_identical_to_1_thread: bool,
}

impl Serialize for StageResult {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("StageResult", 5)?;
        s.serialize_field("stage", &self.stage)?;
        s.serialize_field("threads", &self.threads)?;
        s.serialize_field("seconds", &self.seconds)?;
        s.serialize_field("speedup_vs_1_thread", &self.speedup_vs_1_thread)?;
        s.serialize_field("byte_identical_to_1_thread", &self.byte_identical_to_1_thread)?;
        s.end()
    }
}

/// One shape of the δ-fit matmul sweep: the four timed variants
/// factor the win into dispatch (pool vs scoped spawn) and kernel
/// (tiled vs scalar) contributions.
#[derive(Debug)]
struct SweepShape {
    rows: usize,
    inner: usize,
    cols: usize,
    reps: usize,
    /// Retired dispatcher + untiled kernel at 4 workers — the pre-pool
    /// baseline this PR is measured against.
    scoped_scalar_4t_secs: f64,
    /// Persistent pool + tiled kernel at 4 threads.
    pool_tiled_4t_secs: f64,
    /// Sequential untiled kernel (no dispatch at all).
    seq_scalar_secs: f64,
    /// Sequential tiled kernel (isolates the kernel win).
    seq_tiled_secs: f64,
    speedup_pool_tiled_vs_scoped_scalar: f64,
}

impl Serialize for SweepShape {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("SweepShape", 9)?;
        s.serialize_field("rows", &self.rows)?;
        s.serialize_field("inner", &self.inner)?;
        s.serialize_field("cols", &self.cols)?;
        s.serialize_field("reps", &self.reps)?;
        s.serialize_field("scoped_scalar_4t_secs", &self.scoped_scalar_4t_secs)?;
        s.serialize_field("pool_tiled_4t_secs", &self.pool_tiled_4t_secs)?;
        s.serialize_field("seq_scalar_secs", &self.seq_scalar_secs)?;
        s.serialize_field("seq_tiled_secs", &self.seq_tiled_secs)?;
        s.serialize_field(
            "speedup_pool_tiled_vs_scoped_scalar",
            &self.speedup_pool_tiled_vs_scoped_scalar,
        )?;
        s.end()
    }
}

/// One rung of a gate-calibration ladder: the same operation timed
/// sequentially and force-dispatched on the pool at 4 threads.
#[derive(Debug)]
struct GateCalibrationPoint {
    flops: u64,
    seq_secs: f64,
    pool_4t_secs: f64,
    parallel_wins: bool,
}

impl Serialize for GateCalibrationPoint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("GateCalibrationPoint", 4)?;
        s.serialize_field("flops", &self.flops)?;
        s.serialize_field("seq_secs", &self.seq_secs)?;
        s.serialize_field("pool_4t_secs", &self.pool_4t_secs)?;
        s.serialize_field("parallel_wins", &self.parallel_wins)?;
        s.end()
    }
}

/// Measured vs calibrated break-even point for one kernel: the
/// evidence behind `agua_nn::parallel::breakeven`.
#[derive(Debug)]
struct GateCalibration {
    kernel: String,
    /// The constant the dispatch gate ships with.
    calibrated_breakeven_flops: u64,
    /// Smallest ladder rung from which the pool dispatch wins at every
    /// larger size. `None` (serialized as `null`) when parallel never
    /// wins on this machine — a `0` here used to masquerade as "wins
    /// from the very first rung".
    measured_crossover_flops: Option<u64>,
    points: Vec<GateCalibrationPoint>,
}

impl Serialize for GateCalibration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("GateCalibration", 4)?;
        s.serialize_field("kernel", &self.kernel)?;
        s.serialize_field("calibrated_breakeven_flops", &self.calibrated_breakeven_flops)?;
        s.serialize_field("measured_crossover_flops", &self.measured_crossover_flops)?;
        s.serialize_field("points", &self.points)?;
        s.end()
    }
}

/// The int8 quantized surrogate measured against its `f32` original:
/// the Table-2-style fidelity gate plus footprint and inference time.
#[derive(Debug)]
struct QuantizedSection {
    /// Gate tolerance (max admissible fidelity drop).
    epsilon: f64,
    /// `f32` surrogate fidelity on the calibration batch — 1.0 here,
    /// because the `f32` model's own predictions are the reference.
    f32_fidelity: f64,
    quantized_fidelity: f64,
    fidelity_drop: f64,
    gate_passes: bool,
    weight_bytes_f32: u64,
    weight_bytes_q8: u64,
    predict_f32_1t_secs: f64,
    predict_q8_1t_secs: f64,
    predict_f32_4t_secs: f64,
    predict_q8_4t_secs: f64,
    /// `f32` batched explanation at 4 threads — the baseline for the
    /// fused quantized explain path below.
    explain_f32_4t_secs: f64,
    /// `explain::batched_quantized` (one quantized δ forward + in-place
    /// row transform) at 4 threads.
    explain_q8_4t_secs: f64,
    /// Fast quantized-batched path byte-identical to the per-row
    /// quantized reference.
    explain_q8_identical_to_reference: bool,
}

impl Serialize for QuantizedSection {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("QuantizedSection", 14)?;
        s.serialize_field("epsilon", &self.epsilon)?;
        s.serialize_field("f32_fidelity", &self.f32_fidelity)?;
        s.serialize_field("quantized_fidelity", &self.quantized_fidelity)?;
        s.serialize_field("fidelity_drop", &self.fidelity_drop)?;
        s.serialize_field("gate_passes", &self.gate_passes)?;
        s.serialize_field("weight_bytes_f32", &self.weight_bytes_f32)?;
        s.serialize_field("weight_bytes_q8", &self.weight_bytes_q8)?;
        s.serialize_field("predict_f32_1t_secs", &self.predict_f32_1t_secs)?;
        s.serialize_field("predict_q8_1t_secs", &self.predict_q8_1t_secs)?;
        s.serialize_field("predict_f32_4t_secs", &self.predict_f32_4t_secs)?;
        s.serialize_field("predict_q8_4t_secs", &self.predict_q8_4t_secs)?;
        s.serialize_field("explain_f32_4t_secs", &self.explain_f32_4t_secs)?;
        s.serialize_field("explain_q8_4t_secs", &self.explain_q8_4t_secs)?;
        s.serialize_field(
            "explain_q8_identical_to_reference",
            &self.explain_q8_identical_to_reference,
        )?;
        s.end()
    }
}

/// The batched-explanation fix measured against the retired
/// implementation it replaced (`explain::batched_reference`: two δ
/// forwards plus per-row contribution vectors, string clones, and
/// sorts). This is the honest form of the stage's speedup on any
/// machine: thread scaling needs cores, but the algorithmic win —
/// half the forwards, no per-row allocation churn — does not.
#[derive(Debug)]
struct ExplanationRegression {
    /// Retired implementation, 1 thread.
    reference_1t_secs: f64,
    /// Rewritten path, 1 thread (pure algorithmic win).
    fixed_1t_secs: f64,
    /// Rewritten path, 4 threads under the calibrated gate (adds
    /// whatever thread scaling this machine can actually provide).
    fixed_4t_secs: f64,
    speedup_fixed_1t_vs_reference: f64,
    /// The headline regression-gate number.
    speedup_fixed_4t_vs_reference: f64,
    /// Fixed path (both thread counts) byte-identical to the reference.
    identical_to_reference: bool,
}

impl Serialize for ExplanationRegression {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("ExplanationRegression", 6)?;
        s.serialize_field("reference_1t_secs", &self.reference_1t_secs)?;
        s.serialize_field("fixed_1t_secs", &self.fixed_1t_secs)?;
        s.serialize_field("fixed_4t_secs", &self.fixed_4t_secs)?;
        s.serialize_field("speedup_fixed_1t_vs_reference", &self.speedup_fixed_1t_vs_reference)?;
        s.serialize_field("speedup_fixed_4t_vs_reference", &self.speedup_fixed_4t_vs_reference)?;
        s.serialize_field("identical_to_reference", &self.identical_to_reference)?;
        s.end()
    }
}

/// The persisted report: per-stage timings, the matmul sweep, the gate
/// calibration ladders, the quantized-surrogate section, and the
/// kernel-dispatch counters aggregated by the `Metrics` subscriber over
/// the whole run.
#[derive(Debug)]
struct BenchParallelReport {
    /// "full" or "smoke" (`--smoke` skips the training stage).
    mode: String,
    stages: Vec<StageResult>,
    /// Rewritten batched-explanation path vs the retired one.
    batched_explanation_vs_reference: ExplanationRegression,
    /// δ-fit-shaped matmuls, pool+tiled vs scoped-spawn scalar.
    matmul_sweep: Vec<SweepShape>,
    /// Total-time speedup of the pool+tiled path over the scoped-spawn
    /// scalar baseline across the whole sweep at 4 threads.
    speedup_pool_tiled_vs_scoped_scalar: f64,
    /// Per-kernel sequential-vs-pool crossover ladders.
    gate_calibration: Vec<GateCalibration>,
    /// Int8 surrogate fidelity gate + footprint/time trade.
    quantized: QuantizedSection,
    /// Deterministic dispatch/MAC counters (`kernel.*`), identical at
    /// any thread count.
    kernel_dispatch_counters: BTreeMap<String, u64>,
    /// Scheduling counters (parallel vs sequential dispatches, pool
    /// dispatches, queue depths, peak worker counts) — these
    /// legitimately vary with the thread counts exercised above.
    kernel_scheduling: BTreeMap<String, u64>,
}

impl Serialize for BenchParallelReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("BenchParallelReport", 9)?;
        s.serialize_field("mode", &self.mode)?;
        s.serialize_field("stages", &self.stages)?;
        s.serialize_field(
            "batched_explanation_vs_reference",
            &self.batched_explanation_vs_reference,
        )?;
        s.serialize_field("matmul_sweep", &self.matmul_sweep)?;
        s.serialize_field(
            "speedup_pool_tiled_vs_scoped_scalar",
            &self.speedup_pool_tiled_vs_scoped_scalar,
        )?;
        s.serialize_field("gate_calibration", &self.gate_calibration)?;
        s.serialize_field("quantized", &self.quantized)?;
        s.serialize_field("kernel_dispatch_counters", &self.kernel_dispatch_counters)?;
        s.serialize_field("kernel_scheduling", &self.kernel_scheduling)?;
        s.end()
    }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn model_bits(model: &AguaModel) -> Vec<u32> {
    let mut out = bits(model.output_mapping.weights());
    out.extend(bits(model.output_mapping.bias()));
    out
}

/// Deterministic dense test matrix for the sweep.
fn sweep_mat(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 7 + salt * 13) % 101) as f32 / 50.0 - 1.0)
}

/// An untrained surrogate with δ's real architecture (Linear → ReLU →
/// LayerNorm → Linear): random weights time exactly like trained ones,
/// so the smoke-mode explanation stage can skip the expensive fit.
fn untrained_model(spec: SynthSpec, hidden: usize) -> AguaModel {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let concept_mapping =
        ConceptMapping::new(&mut rng, spec.emb_dim, hidden, spec.concepts, spec.k);
    let output_mapping = OutputMapping::new(&mut rng, spec.concepts * spec.k, spec.n_outputs);
    let concept_names = (0..spec.concepts).map(|g| format!("synthetic concept {g}")).collect();
    AguaModel { concept_mapping, output_mapping, concept_names }
}

/// Times `f` over `reps` repetitions (after one untimed warm-up) and
/// returns the *minimum* per-rep time: the steady-state cost with
/// scheduler noise and interference spikes filtered out, which is the
/// stable statistic on a shared machine.
fn time_reps<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut last = f(); // warm-up rep, also the checked output
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        last = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, last)
}

/// The batched-explanation stage: `reps` full-dataset explanations at
/// each thread count, byte-compared against the 1-thread baseline.
fn run_explanation_stage(
    model: &AguaModel,
    embeddings: &Matrix,
    reps: usize,
    obs: &Arc<dyn Subscriber>,
    rows: &mut Vec<StageResult>,
) {
    println!("\n[batched explanation] n={} reps={reps}", embeddings.rows());
    let mut baseline_weights: Vec<u32> = Vec::new();
    let mut base_secs = 0.0f64;
    for &threads in &[1usize, 2, 4] {
        // The span gives subscribers the stage total; the persisted row
        // records the minimum per-rep time (see `time_reps`) so the
        // speedup column isn't an interference-spike lottery.
        let span = span_start(&**obs, Stage::Custom("batched_explanation"));
        let (secs, explanation) = time_reps(reps, || {
            with_scoped_subscriber(obs.clone(), || {
                with_threads(threads, || explain::batched(model, embeddings, 0))
            })
        });
        span_end(&**obs, span);
        let weight_bits: Vec<u32> =
            explanation.contributions.iter().map(|c| c.weight.to_bits()).collect();
        let identical = if threads == 1 {
            base_secs = secs;
            baseline_weights = weight_bits;
            true
        } else {
            weight_bits == baseline_weights
        };
        let speedup = base_secs / secs;
        println!("  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}");
        rows.push(StageResult {
            stage: "batched_explanation".into(),
            threads,
            seconds: secs,
            speedup_vs_1_thread: speedup,
            byte_identical_to_1_thread: identical,
        });
    }
}

/// Every float of a batched explanation, bit-exact, plus the concept
/// ranking — the comparison key for the vs-reference section.
fn explanation_bits(b: &agua::explain::BatchedExplanation) -> (Vec<String>, Vec<u32>) {
    let names = b.contributions.iter().map(|c| c.concept.clone()).collect();
    let mut out = vec![b.mean_output_prob.to_bits()];
    for c in &b.contributions {
        out.push(c.weight.to_bits());
        out.extend(c.per_class.iter().map(|v| v.to_bits()));
    }
    (names, out)
}

/// The fix vs the code it replaced: `explain::batched` against
/// `explain::batched_reference` at 1 thread, plus the fixed path at 4
/// threads under the calibrated gate (which caps workers at this
/// machine's cores, so on a 1-core box it degrades to the 1-thread
/// number instead of the sub-1× pool-overhead regression).
fn run_explanation_regression(
    model: &AguaModel,
    embeddings: &Matrix,
    reps: usize,
    obs: &Arc<dyn Subscriber>,
) -> ExplanationRegression {
    println!("\n[vs retired reference] n={} reps={reps}", embeddings.rows());
    let timed = |threads: usize, f: &dyn Fn() -> agua::explain::BatchedExplanation| {
        time_reps(reps, || with_scoped_subscriber(obs.clone(), || with_threads(threads, f)))
    };
    let (reference_secs, reference) =
        timed(1, &|| explain::batched_reference(model, embeddings, 0));
    let (fixed_1t_secs, fixed_1t) = timed(1, &|| explain::batched(model, embeddings, 0));
    let (fixed_4t_secs, fixed_4t) = timed(4, &|| explain::batched(model, embeddings, 0));

    let ref_key = explanation_bits(&reference);
    let identical =
        explanation_bits(&fixed_1t) == ref_key && explanation_bits(&fixed_4t) == ref_key;
    let speedup_1t = reference_secs / fixed_1t_secs;
    let speedup_4t = reference_secs / fixed_4t_secs;
    println!(
        "  reference={:.0}us fixed_1t={:.0}us fixed_4t={:.0}us  speedup_4t={speedup_4t:.2}x  identical={identical}",
        reference_secs * 1e6,
        fixed_1t_secs * 1e6,
        fixed_4t_secs * 1e6,
    );
    ExplanationRegression {
        reference_1t_secs: reference_secs,
        fixed_1t_secs,
        fixed_4t_secs,
        speedup_fixed_1t_vs_reference: speedup_1t,
        speedup_fixed_4t_vs_reference: speedup_4t,
        identical_to_reference: identical,
    }
}

/// The matmul sweep: δ-fit-shaped products (batch × emb → hidden,
/// batch × hidden → C·k logits) at 4 threads, pool+tiled vs the
/// retired scoped-spawn scalar path.
fn run_sweep(reps: usize) -> (Vec<SweepShape>, f64) {
    const SHAPES: [(usize, usize, usize); 4] =
        [(100, 128, 256), (250, 128, 256), (500, 128, 256), (500, 256, 24)];
    const THREADS: usize = 4;
    let forced = ThreadConfig { threads: THREADS, min_flops: 0 };

    println!("\n[matmul sweep] pool+tiled vs scoped-spawn scalar, {THREADS} threads, {reps} reps");
    let mut rows = Vec::new();
    let mut total_scoped = 0.0f64;
    let mut total_pool = 0.0f64;
    for &(m, k, n) in &SHAPES {
        let a = sweep_mat(m, k, 1);
        let b = sweep_mat(k, n, 2);

        let (scoped_secs, scoped_out) =
            time_reps(reps, || reference::scoped_scalar_matmul(&a, &b, THREADS));
        let (pool_secs, pool_out) =
            time_reps(reps, || with_thread_config(forced, || agua_nn::par_matmul(&a, &b)));
        let (seq_scalar_secs, seq_out) = time_reps(reps, || a.matmul_reference(&b));
        let (seq_tiled_secs, tiled_out) = time_reps(reps, || a.matmul(&b));

        assert_eq!(bits(&seq_out), bits(&pool_out), "pool+tiled must match sequential scalar");
        assert_eq!(bits(&seq_out), bits(&scoped_out), "scoped scalar must match sequential");
        assert_eq!(bits(&seq_out), bits(&tiled_out), "tiled kernel must match scalar");

        let speedup = scoped_secs / pool_secs;
        total_scoped += scoped_secs;
        total_pool += pool_secs;
        println!(
            "  {m}x{k}x{n}: scoped_scalar={:.0}us pool_tiled={:.0}us (seq scalar={:.0}us tiled={:.0}us)  speedup={speedup:.2}x",
            scoped_secs * 1e6,
            pool_secs * 1e6,
            seq_scalar_secs * 1e6,
            seq_tiled_secs * 1e6,
        );
        rows.push(SweepShape {
            rows: m,
            inner: k,
            cols: n,
            reps,
            scoped_scalar_4t_secs: scoped_secs,
            pool_tiled_4t_secs: pool_secs,
            seq_scalar_secs,
            seq_tiled_secs,
            speedup_pool_tiled_vs_scoped_scalar: speedup,
        });
    }
    let overall = total_scoped / total_pool;
    println!("  overall speedup (total time): {overall:.2}x");
    (rows, overall)
}

/// Smallest rung from which the pool wins at every larger size, or
/// `None` when parallel never wins: the old `0` sentinel read exactly
/// like "wins from the very first rung" in the persisted report.
fn crossover(points: &[GateCalibrationPoint]) -> Option<u64> {
    let mut best = None;
    for p in points {
        if p.parallel_wins {
            best = best.or(Some(p.flops));
        } else {
            best = None;
        }
    }
    best
}

/// Human-readable crossover for the console line, with an explicit
/// warning when the pool never won so a missing crossover can't be
/// mistaken for a zero-cost one.
fn report_crossover(kernel: &str, calibrated: usize, measured: Option<u64>) {
    match measured {
        Some(flops) => println!("  {kernel}: calibrated={calibrated} measured_crossover={flops}"),
        None => {
            println!("  {kernel}: calibrated={calibrated} measured_crossover=none");
            eprintln!(
                "  warning: {kernel} pool dispatch never beat sequential on this machine; \
                 measured_crossover_flops recorded as null"
            );
        }
    }
}

/// The gate-calibration sweep: each kernel timed sequentially vs
/// force-dispatched at 4 threads across a ladder of doubling sizes.
/// The crossover is what the `breakeven` constants are calibrated to.
fn run_gate_calibration(reps: usize) -> Vec<GateCalibration> {
    let seq = ThreadConfig { threads: 1, min_flops: 0 };
    let par = ThreadConfig { threads: 4, min_flops: 0 };
    println!("\n[gate calibration] sequential vs forced 4-thread pool dispatch, {reps} reps");
    let mut out = Vec::new();

    // matmul: square-ish m×128×m products doubling in MACs.
    let mut points = Vec::new();
    for &m in &[4usize, 8, 16, 32, 64, 128] {
        let a = sweep_mat(m, 128, 3);
        let b = sweep_mat(128, m, 4);
        let flops = (m * 128 * m) as u64;
        let (seq_secs, s_out) =
            time_reps(reps, || with_thread_config(seq, || agua_nn::par_matmul(&a, &b)));
        let (pool_secs, p_out) =
            time_reps(reps, || with_thread_config(par, || agua_nn::par_matmul(&a, &b)));
        assert_eq!(bits(&s_out), bits(&p_out), "calibration outputs must agree");
        points.push(GateCalibrationPoint {
            flops,
            seq_secs,
            pool_4t_secs: pool_secs,
            parallel_wins: pool_secs < seq_secs,
        });
    }
    let measured = crossover(&points);
    report_crossover("matmul", breakeven::MATMUL, measured);
    out.push(GateCalibration {
        kernel: "matmul".into(),
        calibrated_breakeven_flops: breakeven::MATMUL as u64,
        measured_crossover_flops: measured,
        points,
    });

    // matmul_q8: the int8 lane kernel over the same m×128×m shapes.
    // Integer MACs are cheaper per element than f32 ones, so the
    // per-row work is smaller and the crossover lands later — the
    // evidence behind `breakeven::MATMUL_Q8` sitting above
    // `breakeven::MATMUL`.
    let mut points = Vec::new();
    for &m in &[4usize, 8, 16, 32, 64, 128, 256] {
        let q = QuantizedLinear::from_f32(&sweep_mat(128, m, 6), &sweep_mat(1, m, 7));
        let x = sweep_mat(m, 128, 8);
        let flops = (m * 128 * m) as u64;
        let (seq_secs, s_out) = time_reps(reps, || with_thread_config(seq, || q.infer(&x)));
        let (pool_secs, p_out) = time_reps(reps, || with_thread_config(par, || q.infer(&x)));
        assert_eq!(bits(&s_out), bits(&p_out), "calibration outputs must agree");
        points.push(GateCalibrationPoint {
            flops,
            seq_secs,
            pool_4t_secs: pool_secs,
            parallel_wins: pool_secs < seq_secs,
        });
    }
    let measured = crossover(&points);
    report_crossover("matmul_q8", breakeven::MATMUL_Q8, measured);
    out.push(GateCalibration {
        kernel: "matmul_q8".into(),
        calibrated_breakeven_flops: breakeven::MATMUL_Q8 as u64,
        measured_crossover_flops: measured,
        points,
    });

    // for_each_rows: an exp-shaped row epilogue (the batched-explanation
    // transform) over m×32 matrices, cost-weighted at EXP_ELEM_FLOPS.
    let cols = 32usize;
    let mut points = Vec::new();
    for &m in &[16usize, 32, 64, 128, 256, 512, 1024] {
        let src = sweep_mat(m, cols, 5);
        let flops = (m * cols * EXP_ELEM_FLOPS) as u64;
        let body = |cfg: ThreadConfig| {
            let mut work = src.clone();
            with_thread_config(cfg, || {
                agua_nn::parallel::par_for_each_rows_cost(&mut work, EXP_ELEM_FLOPS, |_, row| {
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0f32;
                    for v in row.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                })
            });
            work
        };
        let (seq_secs, s_out) = time_reps(reps, || body(seq));
        let (pool_secs, p_out) = time_reps(reps, || body(par));
        assert_eq!(bits(&s_out), bits(&p_out), "calibration outputs must agree");
        points.push(GateCalibrationPoint {
            flops,
            seq_secs,
            pool_4t_secs: pool_secs,
            parallel_wins: pool_secs < seq_secs,
        });
    }
    let measured = crossover(&points);
    report_crossover("for_each_rows", breakeven::FOR_EACH_ROWS, measured);
    out.push(GateCalibration {
        kernel: "for_each_rows".into(),
        calibrated_breakeven_flops: breakeven::FOR_EACH_ROWS as u64,
        measured_crossover_flops: measured,
        points,
    });
    out
}

/// The quantized-surrogate section: gate the int8 mirror against the
/// `f32` model's own predictions (so `f32_fidelity` is 1.0 and the
/// drop is pure prediction disagreement), then time both paths.
fn run_quantized_section(model: &AguaModel, embeddings: &Matrix, reps: usize) -> QuantizedSection {
    const EPSILON: f32 = 0.02;
    let reference = model.predict(embeddings);
    println!("\n[quantized] int8 δ/Ω vs f32, ε={EPSILON}, n={}", embeddings.rows());
    let (quantized, report) =
        match QuantizedAguaModel::from_model_gated(model, embeddings, &reference, EPSILON) {
            Ok((q, r)) => (Some(q), r),
            Err(r) => (None, r),
        };
    // The gate failing is a *finding*, not a bench crash: persist the
    // report either way and let ci.sh judge `gate_passes`.
    let q = quantized.unwrap_or_else(|| QuantizedAguaModel::from_model(model));
    let (f32_1t_secs, _) = time_reps(reps, || with_threads(1, || model.predict_logits(embeddings)));
    let (q8_1t_secs, _) = time_reps(reps, || with_threads(1, || q.predict_logits(embeddings)));
    let (f32_secs, _) = time_reps(reps, || with_threads(4, || model.predict_logits(embeddings)));
    let (q8_secs, _) = time_reps(reps, || with_threads(4, || q.predict_logits(embeddings)));
    let (exp_f32_secs, _) =
        time_reps(reps, || with_threads(4, || explain::batched(model, embeddings, 0)));
    let (exp_q8_secs, q8_explanation) =
        time_reps(reps, || with_threads(4, || explain::batched_quantized(&q, embeddings, 0)));
    let q8_reference = explain::batched_quantized_reference(&q, embeddings, 0);
    let explain_identical = explanation_bits(&q8_explanation) == explanation_bits(&q8_reference);
    println!(
        "  fidelity: f32={:.4} q8={:.4} drop={:.4} passes={}  bytes: f32={} q8={}",
        report.f32_fidelity,
        report.quantized_fidelity,
        report.drop,
        report.passes,
        q.weight_bytes() * 4,
        q.weight_bytes(),
    );
    println!(
        "  predict@1t: f32={:.0}us q8={:.0}us  predict@4t: f32={:.0}us q8={:.0}us",
        f32_1t_secs * 1e6,
        q8_1t_secs * 1e6,
        f32_secs * 1e6,
        q8_secs * 1e6,
    );
    println!(
        "  explain@4t: f32={:.0}us q8={:.0}us  identical_to_reference={explain_identical}",
        exp_f32_secs * 1e6,
        exp_q8_secs * 1e6,
    );
    QuantizedSection {
        epsilon: f64::from(EPSILON),
        f32_fidelity: f64::from(report.f32_fidelity),
        quantized_fidelity: f64::from(report.quantized_fidelity),
        fidelity_drop: f64::from(report.drop),
        gate_passes: report.passes,
        weight_bytes_f32: (q.weight_bytes() * 4) as u64,
        weight_bytes_q8: q.weight_bytes() as u64,
        predict_f32_1t_secs: f32_1t_secs,
        predict_q8_1t_secs: q8_1t_secs,
        predict_f32_4t_secs: f32_secs,
        predict_q8_4t_secs: q8_secs,
        explain_f32_4t_secs: exp_f32_secs,
        explain_q8_4t_secs: exp_q8_secs,
        explain_q8_identical_to_reference: explain_identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "BENCH parallel",
        "1-thread vs N-thread speedup of the deterministic backend (pool + tiled kernels)",
    );
    let metrics = Arc::new(Metrics::new());
    // One Chrome trace per sweep: every stage span, counter, and worker
    // utilization sample lands in results/BENCH_parallel_trace.json,
    // loadable in chrome://tracing or ui.perfetto.dev.
    let trace_path = results_dir().join("BENCH_parallel_trace.json");
    let trace =
        Arc::new(TraceWriter::create(&trace_path).expect("create BENCH_parallel trace file"));
    let obs: Arc<dyn Subscriber> = Fanout::new().push(metrics.clone()).push(trace.clone()).shared();
    let mut rows: Vec<StageResult> = Vec::new();

    // The model and embeddings driving the explanation + quantized
    // sections: trained on the large workload in full mode, untrained
    // (same δ architecture, same shapes-per-sample) on a smaller batch
    // in smoke mode.
    let (model, embeddings) = if smoke {
        let spec = SynthSpec { n: 600, emb_dim: 64, ..SynthSpec::large() };
        let (_, dataset) = synthetic_surrogate(spec);
        (untrained_model(spec, 128), dataset.embeddings)
    } else {
        let spec = SynthSpec::large();
        let (concepts, dataset) = synthetic_surrogate(spec);
        let params = bench_params(spec.seed);
        let thread_counts = [1usize, 2, 4];

        // --- Stage 1: surrogate training (δ then Ω, matmul-dominated).
        println!(
            "\n[fit] n={} emb={} hidden={} cm_batch={}",
            spec.n, spec.emb_dim, params.cm_hidden, params.cm_batch
        );
        let mut baseline_model_bits: Vec<u32> = Vec::new();
        let mut baseline_model: Option<AguaModel> = None;
        let mut fit_base_secs = 0.0f64;
        for &threads in &thread_counts {
            let span = span_start(&*obs, Stage::Custom("surrogate_fit"));
            let model = with_scoped_subscriber(obs.clone(), || {
                with_threads(threads, || {
                    AguaModel::fit(&concepts, spec.k, spec.n_outputs, &dataset, &params)
                })
            });
            let secs = span_end(&*obs, span);
            let mb = model_bits(&model);
            let identical = if threads == 1 {
                fit_base_secs = secs;
                baseline_model_bits = mb;
                baseline_model = Some(model);
                true
            } else {
                mb == baseline_model_bits
            };
            let speedup = fit_base_secs / secs;
            println!(
                "  threads={threads}: {secs:.3}s  speedup={speedup:.2}x  identical={identical}"
            );
            rows.push(StageResult {
                stage: "surrogate_fit".into(),
                threads,
                seconds: secs,
                speedup_vs_1_thread: speedup,
                byte_identical_to_1_thread: identical,
            });
        }
        (baseline_model.expect("1-thread fit ran first"), dataset.embeddings)
    };

    // --- Stage 2: batched explanation (both modes).
    run_explanation_stage(&model, &embeddings, if smoke { 5 } else { 20 }, &obs, &mut rows);

    assert!(
        rows.iter().all(|r| r.byte_identical_to_1_thread),
        "parallel backend must be byte-identical to the sequential path"
    );

    // --- Stage 2b: the regression gate — the rewritten batched path
    // against the retired implementation it replaced.
    let explanation_regression =
        run_explanation_regression(&model, &embeddings, if smoke { 5 } else { 20 }, &obs);

    // --- Stage 3: the δ-fit-shaped matmul sweep (attach the metrics
    // subscriber so pool-dispatch counters show up).
    let (sweep, overall_speedup) =
        with_scoped_subscriber(obs.clone(), || run_sweep(if smoke { 10 } else { 30 }));

    // --- Stage 4: per-kernel gate-calibration ladders, under the
    // metrics subscriber: their forced dispatches are what exercise the
    // pool on machines whose core count keeps the calibrated gate
    // sequential.
    let gate_calibration =
        with_scoped_subscriber(obs.clone(), || run_gate_calibration(if smoke { 5 } else { 20 }));

    // --- Stage 5: the int8 quantized surrogate behind its fidelity gate.
    let quantized = run_quantized_section(&model, &embeddings, if smoke { 5 } else { 20 });
    assert!(
        quantized.explain_q8_identical_to_reference,
        "batched quantized explanation must match the per-row quantized reference byte for byte"
    );

    // Fold the pool's per-worker utilization (busy/parked time, wakeups,
    // chunk latencies drained from the lock-free rings) into the report.
    let chunk_hist = agua_nn::pool::emit_worker_utilization(&*obs);
    metrics.merge_latency_hist("pool.chunk_seconds", &chunk_hist);
    let snapshot = metrics.snapshot();
    let kernel = snapshot.kernel_counters();
    println!("\n[kernel dispatch counters]");
    for (name, value) in &kernel {
        println!("  {name:<40} {value}");
    }
    // The regression this bench guards: the explanation row transform
    // must actually reach the pool (the old uniform gate kept it
    // sequential at every thread count).
    let row_threads = snapshot.scheduling.get("kernel.for_each_rows.max_threads").copied();
    assert!(
        row_threads.is_some_and(|t| t > 1),
        "for_each_rows never dispatched in parallel (max_threads={row_threads:?})"
    );

    assert!(
        explanation_regression.identical_to_reference,
        "rewritten batched explanation must match the retired reference byte for byte"
    );

    let report = BenchParallelReport {
        mode: if smoke { "smoke" } else { "full" }.into(),
        stages: rows,
        batched_explanation_vs_reference: explanation_regression,
        matmul_sweep: sweep,
        speedup_pool_tiled_vs_scoped_scalar: overall_speedup,
        gate_calibration,
        quantized,
        kernel_dispatch_counters: kernel,
        kernel_scheduling: snapshot.scheduling.clone(),
    };
    save_json("BENCH_parallel", &report);
    if !smoke {
        // A full run also refreshes the committed repo-root record.
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_parallel.json");
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        std::fs::write(&path, json).expect("write repo-root report");
        println!("wrote {}", path.display());
    }
    trace.flush().expect("flush BENCH_parallel trace");
    println!("wrote {} ({} trace events)", trace_path.display(), trace.len());
    println!("\nwrote results/BENCH_parallel.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(flops: u64, parallel_wins: bool) -> GateCalibrationPoint {
        let (seq_secs, pool_4t_secs) = if parallel_wins { (2.0, 1.0) } else { (1.0, 2.0) };
        GateCalibrationPoint { flops, seq_secs, pool_4t_secs, parallel_wins }
    }

    #[test]
    fn crossover_is_the_first_rung_of_the_winning_suffix() {
        let points = [point(100, false), point(200, true), point(400, true)];
        assert_eq!(crossover(&points), Some(200));
        // A later loss invalidates earlier wins: only a winning suffix
        // counts as a crossover.
        let points = [point(100, true), point(200, false), point(400, true)];
        assert_eq!(crossover(&points), Some(400));
    }

    #[test]
    fn crossover_is_none_when_parallel_never_wins() {
        let points = [point(100, false), point(200, false)];
        assert_eq!(crossover(&points), None);
        assert_eq!(crossover(&[]), None);
    }

    #[test]
    fn missing_crossover_serializes_as_null_not_zero() {
        let gc = GateCalibration {
            kernel: "matmul".into(),
            calibrated_breakeven_flops: 8192,
            measured_crossover_flops: None,
            points: vec![point(100, false)],
        };
        let v = serde_json::to_value(&gc).expect("serialize GateCalibration");
        assert!(
            v.get("measured_crossover_flops").is_some_and(serde_json::Value::is_null),
            "a never-winning ladder must persist null, got {v:?}"
        );
    }

    #[test]
    fn measured_crossover_serializes_as_its_flops_value() {
        let gc = GateCalibration {
            kernel: "matmul_q8".into(),
            calibrated_breakeven_flops: 65536,
            measured_crossover_flops: Some(131072),
            points: vec![point(131072, true)],
        };
        let v = serde_json::to_value(&gc).expect("serialize GateCalibration");
        assert_eq!(v["measured_crossover_flops"], 131072);
        assert_eq!(v["kernel"], "matmul_q8");
    }
}
