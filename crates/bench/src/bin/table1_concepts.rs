//! **Table 1** — Base concepts for the three applications, plus the
//! §3.2 inter-concept similarity check that curates them.

#![forbid(unsafe_code)]

use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts, ConceptSet};
use agua_bench::report::banner;
use agua_text::embedding::Embedder;

fn show(title: &str, set: &ConceptSet) {
    println!("\n{title} ({} concepts):", set.len());
    for (i, c) in set.concepts.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, c.name);
    }
    // The operator's empirical redundancy check (Eq. 1).
    let embedder = Embedder::new(512);
    let sim = set.similarity_matrix(&embedder);
    let mut max_off = (0usize, 0usize, 0.0f32);
    for i in 0..set.len() {
        for j in 0..i {
            if sim[i][j] > max_off.2 {
                max_off = (i, j, sim[i][j]);
            }
        }
    }
    println!(
        "  most-similar pair: \"{}\" ~ \"{}\" (cosine {:.3})",
        set.concepts[max_off.0].name, set.concepts[max_off.1].name, max_off.2
    );
    let (filtered, removed) = set.filter_redundant(&embedder, 0.85);
    println!(
        "  S_max = 0.85 filter keeps {}/{} concepts (removed: {:?})",
        filtered.len(),
        set.len(),
        removed
    );
}

fn main() {
    banner("Table 1", "Base concepts per application");
    show("(a) Adaptive Bitrate Streaming", &abr_concepts());
    show("(b) Congestion Control", &cc_concepts());
    show("(c) DDoS Detection", &ddos_concepts());
}
