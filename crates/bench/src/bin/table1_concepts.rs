//! **Table 1** — Base concepts for the three applications, plus the
//! §3.2 inter-concept similarity check that curates them.

#![forbid(unsafe_code)]

use agua_app::codec::object;
use agua_app::{Application, ABR, CC, DDOS};
use agua_bench::ExperimentRunner;
use agua_text::embedding::Embedder;
use serde_json::Value;

fn show(label: &str, app: &dyn Application) -> Value {
    let set = app.concepts();
    println!("\n({label}) {} ({} concepts):", app.display_name(), set.len());
    for (i, c) in set.concepts.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, c.name);
    }
    // The operator's empirical redundancy check (Eq. 1).
    let embedder = Embedder::new(512);
    let sim = set.similarity_matrix(&embedder);
    let mut max_off = (0usize, 0usize, 0.0f32);
    for i in 0..set.len() {
        for j in 0..i {
            if sim[i][j] > max_off.2 {
                max_off = (i, j, sim[i][j]);
            }
        }
    }
    println!(
        "  most-similar pair: \"{}\" ~ \"{}\" (cosine {:.3})",
        set.concepts[max_off.0].name, set.concepts[max_off.1].name, max_off.2
    );
    let (filtered, removed) = set.filter_redundant(&embedder, 0.85);
    println!(
        "  S_max = 0.85 filter keeps {}/{} concepts (removed: {:?})",
        filtered.len(),
        set.len(),
        removed
    );
    object(vec![
        ("app", Value::String(app.name().to_string())),
        ("concepts", Value::Number(set.len() as f64)),
        ("kept_after_filter", Value::Number(filtered.len() as f64)),
        ("max_pair_cosine", Value::Number(f64::from(max_off.2))),
    ])
}

fn main() {
    let runner = ExperimentRunner::new("Table 1", "Base concepts per application");
    let rows: Vec<Value> = [("a", &ABR as &dyn Application), ("b", &CC), ("c", &DDOS)]
        .into_iter()
        .map(|(label, app)| show(label, app))
        .collect();
    runner.finish("table1_concepts", &Value::Array(rows));
}
