//! **Figure 13 (Appendix A.1)** — Fidelity across concept-space size.
//!
//! Trains Agua on growing prefixes of the ABR concept set and compares
//! fidelity against a majority-class baseline.
//!
//! Paper shape: fidelity near the baseline with very few concepts, rising
//! steeply as decision-relevant concepts arrive, then saturating with
//! diminishing returns.

#![forbid(unsafe_code)]

use agua::concepts::abr_concepts;
use agua::surrogate::TrainParams;
use agua_app::codec::object;
use agua_app::{abr_app, fit_agua, LlmVariant, RolloutSpec, ABR};
use agua_bench::report::sparkline;
use agua_bench::ExperimentRunner;
use serde_json::Value;

fn main() {
    let runner = ExperimentRunner::new("Figure 13", "Fidelity vs concept-space size (ABR)");
    let store = runner.store();

    println!("\ntraining controller and collecting rollouts…");
    let controller = store.controller(&ABR, 11, runner.obs());
    let n_traces = runner.size(40, 8) * abr_app::CHUNKS;
    let train =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 12), runner.obs());
    let test =
        store.rollout(&ABR, &controller, &RolloutSpec::on("train2021", n_traces, 13), runner.obs());

    // Majority baseline: always predict the most frequent output.
    let mut counts = [0usize; abr_env::LEVELS];
    for &y in &train.outputs {
        counts[y] += 1;
    }
    let majority =
        counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).expect("non-empty");
    let baseline =
        test.outputs.iter().filter(|&&y| y == majority).count() as f32 / test.outputs.len() as f32;

    let full = abr_concepts();
    let sizes = [1usize, 2, 4, 6, 8, 10, 12, 14, 16];
    let mut points = Vec::new();
    let mut curve = Vec::new();
    println!("\n{:>9} {:>10}", "concepts", "fidelity");
    println!("{}", "-".repeat(22));
    for &n in &sizes {
        // Subset fits use truncated concept spaces, so they bypass the
        // app-level surrogate helper and fit directly.
        let subset = full.take(n);
        let (model, _) = fit_agua(
            &subset,
            abr_env::LEVELS,
            &train,
            LlmVariant::HighQuality,
            &TrainParams::tuned(),
            42,
        );
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        println!("{n:>9} {fid:>10.3}");
        curve.push(fid);
        points.push(object(vec![
            ("concepts", Value::Number(n as f64)),
            ("fidelity", Value::Number(f64::from(fid))),
        ]));
    }
    println!("{:>9} {baseline:>10.3}", "baseline");

    println!("\nfidelity curve: {}", sparkline(&curve));
    println!(
        "Paper shape: near-baseline at tiny concept spaces, saturating with \
         diminishing returns at larger ones."
    );

    runner.finish(
        "fig13_concept_size",
        &object(vec![
            ("baseline", Value::Number(f64::from(baseline))),
            ("points", Value::Array(points)),
        ]),
    );
}
