//! **Figure 13 (Appendix A.1)** — Fidelity across concept-space size.
//!
//! Trains Agua on growing prefixes of the ABR concept set and compares
//! fidelity against a majority-class baseline.
//!
//! Paper shape: fidelity near the baseline with very few concepts, rising
//! steeply as decision-relevant concepts arrive, then saturating with
//! diminishing returns.

#![forbid(unsafe_code)]

use abr_env::DatasetEra;
use agua::concepts::abr_concepts;
use agua::surrogate::TrainParams;
use agua_bench::apps::{abr_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json, sparkline};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SizePoint {
    concepts: usize,
    fidelity: f32,
}

fn main() {
    banner("Figure 13", "Fidelity vs concept-space size (ABR)");

    println!("\ntraining controller and collecting rollouts…");
    let controller = abr_app::build_controller(11);
    let train = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 12);
    let test = abr_app::rollout(&controller, DatasetEra::Train2021, 40, 13);

    // Majority baseline: always predict the most frequent output.
    let mut counts = [0usize; abr_env::LEVELS];
    for &y in &train.outputs {
        counts[y] += 1;
    }
    let majority =
        counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i).expect("non-empty");
    let baseline =
        test.outputs.iter().filter(|&&y| y == majority).count() as f32 / test.outputs.len() as f32;

    let full = abr_concepts();
    let sizes = [1usize, 2, 4, 6, 8, 10, 12, 14, 16];
    let mut points = Vec::new();
    println!("\n{:>9} {:>10}", "concepts", "fidelity");
    println!("{}", "-".repeat(22));
    for &n in &sizes {
        let subset = full.take(n);
        let (model, _) = fit_agua(
            &subset,
            abr_env::LEVELS,
            &train,
            LlmVariant::HighQuality,
            &TrainParams::tuned(),
            42,
        );
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        println!("{n:>9} {fid:>10.3}");
        points.push(SizePoint { concepts: n, fidelity: fid });
    }
    println!("{:>9} {baseline:>10.3}", "baseline");

    let curve: Vec<f32> = points.iter().map(|p| p.fidelity).collect();
    println!("\nfidelity curve: {}", sparkline(&curve));
    println!(
        "Paper shape: near-baseline at tiny concept spaces, saturating with \
         diminishing returns at larger ones."
    );

    #[derive(Serialize)]
    struct Fig13Result {
        baseline: f32,
        points: Vec<SizePoint>,
    }
    save_json("fig13_concept_size", &Fig13Result { baseline, points });
}
