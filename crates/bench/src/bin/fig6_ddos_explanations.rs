//! **Figure 6** — Agua's explanations of the LUCID-style detector.
//!
//! (a) Batched factual explanation for correctly-classified benign flows
//! — paper shape: 'Typical Application Behavior' plus the absence of
//! 'Payload Anomalies' dominate.
//! (b) Batched factual explanation for TCP SYN flood flows — paper
//! shape: 'Payload Anomalies' and 'Protocol Anomalies' dominate.
//!
//! Pass `--smoke` for a reduced-size run (the `ci.sh` cache gate runs
//! this twice and asserts the warm run is all artifact hits with a
//! byte-identical result JSON).

#![forbid(unsafe_code)]

use agua::explain::{batched, BatchedExplanation};
use agua_app::codec::object;
use agua_app::{RolloutSpec, DDOS};
use agua_bench::report::bar;
use agua_bench::ExperimentRunner;
use agua_controllers::ddos::{ATTACK, BENIGN};
use agua_engine::FitSpec;
use serde_json::Value;

fn top_contributions(e: &BatchedExplanation, n: usize) -> Value {
    Value::Array(
        e.contributions
            .iter()
            .take(n)
            .map(|c| {
                Value::Array(vec![
                    Value::String(c.concept.clone()),
                    Value::Number(f64::from(c.weight)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let runner = ExperimentRunner::new("Figure 6", "Explaining LUCID's detection mechanism");
    let store = runner.store();

    println!("\ntraining detector, fitting Agua…");
    // The engine's standard pipeline spec IS this figure's trio
    // (controller seed 31, rollout seed 32, HQ labels, tuned params),
    // with the int8 mirror behind its fidelity gate: exercises the
    // `surrogate_q8` artifact kind, so the warm-rerun `[store]` summary
    // shows hit/miss symmetry for the quantized weights too.
    let fitted = runner.fit(&DDOS, &FitSpec::standard(runner.size(1000, 150)).quantized(0.02));
    let detector = &fitted.controller;
    let model = &fitted.model;
    let q8 = fitted.quantized.as_ref().expect("spec requested the int8 surrogate");
    let q8_report = fitted.q8_report().expect("gate ran");
    println!(
        "int8 surrogate: fidelity {:.4} vs f32 {:.4} (drop {:+.4}, ε={}, gate {})",
        q8_report.quantized_fidelity,
        q8_report.f32_fidelity,
        q8_report.drop,
        q8_report.epsilon,
        if q8_report.passes { "passes" } else { "FAILS" },
    );

    // (a) Benign flows classified benign.
    let benign = store.rollout(
        &DDOS,
        detector,
        &RolloutSpec::on("benign-http", runner.size(200, 60), 77),
        runner.obs(),
    );
    let benign_acc =
        benign.outputs.iter().filter(|&&y| y == BENIGN).count() as f32 / benign.len() as f32;
    let be = batched(model, &benign.embeddings, BENIGN);
    println!("\n(a) Benign HTTP flows — detector says benign for {:.0}%:", benign_acc * 100.0);
    let max_w = be.contributions[0].weight;
    for c in be.contributions.iter().take(5) {
        println!("  {}", bar(&c.concept, c.weight, max_w, 30));
    }

    // (b) SYN-flood flows flagged as DDoS.
    let syn = store.rollout(
        &DDOS,
        detector,
        &RolloutSpec::on("syn-flood", runner.size(200, 60), 78),
        runner.obs(),
    );
    let syn_rate = syn.outputs.iter().filter(|&&y| y == ATTACK).count() as f32 / syn.len() as f32;
    let se = batched(model, &syn.embeddings, ATTACK);
    println!("\n(b) TCP SYN flood flows — flagged DDoS for {:.0}%:", syn_rate * 100.0);
    let max_w = se.contributions[0].weight;
    for c in se.contributions.iter().take(5) {
        println!("  {}", bar(&c.concept, c.weight, max_w, 30));
    }

    println!(
        "\nPaper shape: benign ← 'Typical Application Behavior' + absent \
         'Payload Anomalies'; SYN flood ← 'Payload Anomalies' + 'Protocol \
         Anomalies'."
    );

    // The quantized explanation of the same SYN-flood batch: one int8 δ
    // forward plus the in-place row transform. Only produced when the
    // fidelity gate admitted the quantized model.
    let q8_syn_top = match &q8 {
        Ok((q, _)) => {
            let qe = agua::explain::batched_quantized(q, &syn.embeddings, ATTACK);
            println!("\n(b, int8) same flows through the quantized surrogate:");
            let max_w = qe.contributions[0].weight;
            for c in qe.contributions.iter().take(5) {
                println!("  {}", bar(&c.concept, c.weight, max_w, 30));
            }
            top_contributions(&qe, 5)
        }
        Err(_) => Value::Array(vec![]),
    };

    runner.finish(
        "fig6_ddos_explanations",
        &object(vec![
            ("benign_accuracy", Value::Number(f64::from(benign_acc))),
            ("benign_top", top_contributions(&be, 5)),
            ("q8_fidelity_drop", Value::Number(f64::from(q8_report.drop))),
            ("q8_gate_passes", Value::Bool(q8_report.passes)),
            ("q8_syn_top", q8_syn_top),
            ("syn_detection_rate", Value::Number(f64::from(syn_rate))),
            ("syn_top", top_contributions(&se, 5)),
        ]),
    );
}
