//! **Figure 6** — Agua's explanations of the LUCID-style detector.
//!
//! (a) Batched factual explanation for correctly-classified benign flows
//! — paper shape: 'Typical Application Behavior' plus the absence of
//! 'Payload Anomalies' dominate.
//! (b) Batched factual explanation for TCP SYN flood flows — paper
//! shape: 'Payload Anomalies' and 'Protocol Anomalies' dominate.

#![forbid(unsafe_code)]

use agua::concepts::ddos_concepts;
use agua::explain::batched;
use agua::surrogate::TrainParams;
use agua_bench::apps::{ddos_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, bar, save_json};
use agua_controllers::ddos::{ATTACK, BENIGN};
use ddos_env::FlowKind;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Fig6Result {
    benign_accuracy: f32,
    benign_top: Vec<(String, f32)>,
    syn_detection_rate: f32,
    syn_top: Vec<(String, f32)>,
}

fn main() {
    banner("Figure 6", "Explaining LUCID's detection mechanism");

    println!("\ntraining detector, fitting Agua…");
    let detector = ddos_app::build_controller(31);
    let train = ddos_app::rollout(&detector, 1000, 32);
    let concepts = ddos_concepts();
    let (model, _) =
        fit_agua(&concepts, 2, &train, LlmVariant::HighQuality, &TrainParams::tuned(), 42);

    // (a) Benign flows classified benign.
    let benign = ddos_app::rollout_kind(&detector, FlowKind::BenignHttp, 200, 77);
    let benign_acc =
        benign.outputs.iter().filter(|&&y| y == BENIGN).count() as f32 / benign.len() as f32;
    let be = batched(&model, &benign.embeddings, BENIGN);
    println!("\n(a) Benign HTTP flows — detector says benign for {:.0}%:", benign_acc * 100.0);
    let max_w = be.contributions[0].weight;
    for c in be.contributions.iter().take(5) {
        println!("  {}", bar(&c.concept, c.weight, max_w, 30));
    }

    // (b) SYN-flood flows flagged as DDoS.
    let syn = ddos_app::rollout_kind(&detector, FlowKind::SynFlood, 200, 78);
    let syn_rate = syn.outputs.iter().filter(|&&y| y == ATTACK).count() as f32 / syn.len() as f32;
    let se = batched(&model, &syn.embeddings, ATTACK);
    println!("\n(b) TCP SYN flood flows — flagged DDoS for {:.0}%:", syn_rate * 100.0);
    let max_w = se.contributions[0].weight;
    for c in se.contributions.iter().take(5) {
        println!("  {}", bar(&c.concept, c.weight, max_w, 30));
    }

    println!(
        "\nPaper shape: benign ← 'Typical Application Behavior' + absent \
         'Payload Anomalies'; SYN flood ← 'Payload Anomalies' + 'Protocol \
         Anomalies'."
    );

    save_json(
        "fig6_ddos_explanations",
        &Fig6Result {
            benign_accuracy: benign_acc,
            benign_top: be
                .contributions
                .iter()
                .take(5)
                .map(|c| (c.concept.clone(), c.weight))
                .collect(),
            syn_detection_rate: syn_rate,
            syn_top: se
                .contributions
                .iter()
                .take(5)
                .map(|c| (c.concept.clone(), c.weight))
                .collect(),
        },
    );
}
