//! **Detection latency** (extension) — LUCID's design goal is catching
//! attacks "in the brief window between attack initiation and service
//! denial". This experiment streams traffic timelines with a known attack
//! onset through the trained detector and measures detection latency and
//! pre-onset false-alarm rate, then uses Agua's concept intensities to
//! show what flips at the onset.

#![forbid(unsafe_code)]

use agua::concepts::ddos_concepts;
use agua::explain::concept_intensities;
use agua::surrogate::TrainParams;
use agua_bench::apps::{ddos_app, fit_agua, LlmVariant};
use agua_bench::report::{banner, save_json};
use agua_controllers::ddos::ATTACK;
use agua_nn::Matrix;
use ddos_env::{DdosObservation, FlowKind, Timeline, TimelineConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct LatencyResult {
    attack: String,
    mean_latency_s: f32,
    max_latency_s: f32,
    false_alarm_rate: f32,
    onset_concept_shift: Vec<(String, f32)>,
}

fn main() {
    banner("Detection latency", "Streaming timelines through the detector");

    println!("\ntraining detector and fitting Agua…");
    let detector = ddos_app::build_controller(31);
    let train = ddos_app::rollout(&detector, 1000, 32);
    let concepts = ddos_concepts();
    let (model, _) =
        fit_agua(&concepts, 2, &train, LlmVariant::HighQuality, &TrainParams::tuned(), 42);

    let mut results = Vec::new();
    println!(
        "\n{:<14} {:>14} {:>13} {:>18}",
        "attack", "mean latency", "max latency", "false-alarm rate"
    );
    println!("{}", "-".repeat(64));
    for attack in [FlowKind::SynFlood, FlowKind::UdpFlood, FlowKind::LowAndSlow] {
        let mut latencies = Vec::new();
        let mut false_alarms = Vec::new();
        let mut pre_rows: Vec<Vec<f32>> = Vec::new();
        let mut post_rows: Vec<Vec<f32>> = Vec::new();
        for seed in 0..10u64 {
            let timeline = Timeline::generate(
                TimelineConfig { attack, ..TimelineConfig::default() },
                100 + seed,
            );
            let verdict = |w: &ddos_env::FlowWindow| {
                detector.act(&DdosObservation::new(w.clone()).features()) == ATTACK
            };
            // 3 consecutive attack verdicts = alarm raised.
            if let Some(latency) = timeline.detection_latency(verdict, 3) {
                latencies.push(latency);
            }
            false_alarms.push(timeline.false_alarm_rate(verdict));

            // Concept view: the flows just before vs just after onset.
            for f in &timeline.flows {
                let row = DdosObservation::new(f.window.clone()).features();
                if f.time_s < timeline.onset_s {
                    pre_rows.push(row);
                } else {
                    post_rows.push(row);
                }
            }
        }

        let mean_latency = latencies.iter().sum::<f32>() / latencies.len().max(1) as f32;
        let max_latency = latencies.iter().cloned().fold(0.0f32, f32::max);
        let far = false_alarms.iter().sum::<f32>() / false_alarms.len() as f32;
        println!(
            "{:<14} {:>12.2} s {:>11.2} s {:>18.3}",
            attack.name(),
            mean_latency,
            max_latency,
            far
        );
        assert_eq!(latencies.len(), 10, "the detector must lock on in every timeline");

        // Concept intensities pre vs post onset.
        let pre = concept_intensities(&model, &detector.embeddings(&Matrix::from_rows(&pre_rows)));
        let post =
            concept_intensities(&model, &detector.embeddings(&Matrix::from_rows(&post_rows)));
        let mut shift: Vec<(String, f32)> = model
            .concept_names
            .iter()
            .cloned()
            .zip(post.iter().zip(&pre).map(|(a, b)| a - b))
            .collect();
        shift.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!("    concepts rising at onset:");
        for (name, d) in shift.iter().take(3) {
            println!("      {name:<44} {d:+.4}");
        }
        shift.truncate(3);
        results.push(LatencyResult {
            attack: attack.name().to_string(),
            mean_latency_s: mean_latency,
            max_latency_s: max_latency,
            false_alarm_rate: far,
            onset_concept_shift: shift,
        });
    }

    println!(
        "\nLUCID's design goal: alarms within the window between attack \
         initiation and service denial — sub-second to a few seconds here."
    );
    save_json("detection_latency", &results);
}
