//! **Detection latency** (extension) — LUCID's design goal is catching
//! attacks "in the brief window between attack initiation and service
//! denial". This experiment streams traffic timelines with a known attack
//! onset through the trained detector and measures detection latency and
//! pre-onset false-alarm rate, then uses Agua's concept intensities to
//! show what flips at the onset.

#![forbid(unsafe_code)]

use agua::explain::concept_intensities;
use agua_app::codec::object;
use agua_app::DDOS;
use agua_bench::ExperimentRunner;
use agua_controllers::ddos::ATTACK;
use agua_engine::FitSpec;
use agua_nn::Matrix;
use ddos_env::{DdosObservation, FlowKind, Timeline, TimelineConfig};
use serde_json::Value;

fn main() {
    let runner =
        ExperimentRunner::new("Detection latency", "Streaming timelines through the detector");

    println!("\ntraining detector and fitting Agua…");
    let fitted = runner.fit(&DDOS, &FitSpec::standard(runner.size(1000, 150)));
    let detector = &fitted.controller;
    let model = &fitted.model;

    let mut results = Vec::new();
    println!(
        "\n{:<14} {:>14} {:>13} {:>18}",
        "attack", "mean latency", "max latency", "false-alarm rate"
    );
    println!("{}", "-".repeat(64));
    for attack in [FlowKind::SynFlood, FlowKind::UdpFlood, FlowKind::LowAndSlow] {
        let mut latencies = Vec::new();
        let mut false_alarms = Vec::new();
        let mut pre_rows: Vec<Vec<f32>> = Vec::new();
        let mut post_rows: Vec<Vec<f32>> = Vec::new();
        for seed in 0..10u64 {
            let timeline = Timeline::generate(
                TimelineConfig { attack, ..TimelineConfig::default() },
                100 + seed,
            );
            let verdict = |w: &ddos_env::FlowWindow| {
                detector.act(&DdosObservation::new(w.clone()).features()) == ATTACK
            };
            // 3 consecutive attack verdicts = alarm raised.
            if let Some(latency) = timeline.detection_latency(verdict, 3) {
                latencies.push(latency);
            }
            false_alarms.push(timeline.false_alarm_rate(verdict));

            // Concept view: the flows just before vs just after onset.
            for f in &timeline.flows {
                let row = DdosObservation::new(f.window.clone()).features();
                if f.time_s < timeline.onset_s {
                    pre_rows.push(row);
                } else {
                    post_rows.push(row);
                }
            }
        }

        let mean_latency = latencies.iter().sum::<f32>() / latencies.len().max(1) as f32;
        let max_latency = latencies.iter().cloned().fold(0.0f32, f32::max);
        let far = false_alarms.iter().sum::<f32>() / false_alarms.len() as f32;
        println!(
            "{:<14} {:>12.2} s {:>11.2} s {:>18.3}",
            attack.name(),
            mean_latency,
            max_latency,
            far
        );
        assert_eq!(latencies.len(), 10, "the detector must lock on in every timeline");

        // Concept intensities pre vs post onset.
        let pre = concept_intensities(model, &detector.embeddings(&Matrix::from_rows(&pre_rows)));
        let post = concept_intensities(model, &detector.embeddings(&Matrix::from_rows(&post_rows)));
        let mut shift: Vec<(String, f32)> = model
            .concept_names
            .iter()
            .cloned()
            .zip(post.iter().zip(&pre).map(|(a, b)| a - b))
            .collect();
        shift.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!("    concepts rising at onset:");
        for (name, d) in shift.iter().take(3) {
            println!("      {name:<44} {d:+.4}");
        }
        shift.truncate(3);
        results.push(object(vec![
            ("attack", Value::String(attack.name().to_string())),
            ("false_alarm_rate", Value::Number(f64::from(far))),
            ("max_latency_s", Value::Number(f64::from(max_latency))),
            ("mean_latency_s", Value::Number(f64::from(mean_latency))),
            (
                "onset_concept_shift",
                Value::Array(
                    shift
                        .iter()
                        .map(|(name, d)| {
                            Value::Array(vec![
                                Value::String(name.clone()),
                                Value::Number(f64::from(*d)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }

    println!(
        "\nLUCID's design goal: alarms within the window between attack \
         initiation and service denial — sub-second to a few seconds here."
    );
    runner.finish("detection_latency", &Value::Array(results));
}
