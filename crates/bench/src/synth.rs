//! Synthetic surrogate workloads for the performance benches.
//!
//! Seeded, label-correlated datasets sized so the dense matmul kernels
//! dominate wall-clock — what the 1-thread-vs-N-thread comparisons need
//! to expose the parallel backend's speedup rather than harness noise.

use agua::concepts::{Concept, ConceptSet};
use agua::surrogate::{SurrogateDataset, TrainParams};
use agua_nn::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of a synthetic surrogate workload.
#[derive(Debug, Clone, Copy)]
pub struct SynthSpec {
    /// Number of samples.
    pub n: usize,
    /// Embedding dimensionality.
    pub emb_dim: usize,
    /// Number of concepts.
    pub concepts: usize,
    /// Similarity classes per concept.
    pub k: usize,
    /// Controller output classes.
    pub n_outputs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthSpec {
    /// The workload used by the parallel-backend benches: large enough
    /// that every training matmul clears the backend's flop gate.
    pub fn large() -> Self {
        Self { n: 2000, emb_dim: 128, concepts: 8, k: 3, n_outputs: 4, seed: 7 }
    }
}

/// Training parameters for the parallel benches: a short but matmul-heavy
/// schedule (wide hidden layer, large batches).
pub fn bench_params(seed: u64) -> TrainParams {
    TrainParams {
        cm_hidden: 256,
        cm_epochs: 6,
        cm_batch: 500,
        om_epochs: 20,
        om_batch: 500,
        seed,
        ..TrainParams::paper()
    }
}

/// Builds a synthetic concept set and a surrogate dataset whose labels
/// and outputs are simple functions of the embeddings (so training has
/// signal to fit), all derived deterministically from `spec.seed`.
pub fn synthetic_surrogate(spec: SynthSpec) -> (ConceptSet, SurrogateDataset) {
    let concepts = ConceptSet::new(
        (0..spec.concepts)
            .map(|g| {
                Concept::new(
                    &format!("synthetic concept {g}"),
                    &format!("synthetic concept text {g} for benchmark workloads"),
                )
            })
            .collect(),
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut embeddings = Matrix::zeros(spec.n, spec.emb_dim);
    for r in 0..spec.n {
        for c in 0..spec.emb_dim {
            embeddings.set(r, c, rng.random_range(-1.0..1.0f32));
        }
    }
    let concept_labels: Vec<Vec<usize>> = (0..spec.n)
        .map(|r| {
            (0..spec.concepts)
                .map(|g| {
                    let v = embeddings.get(r, g % spec.emb_dim);
                    (((v + 1.0) / 2.0 * spec.k as f32) as usize).min(spec.k - 1)
                })
                .collect()
        })
        .collect();
    let outputs: Vec<usize> = (0..spec.n)
        .map(|r| (concept_labels[r][0] + concept_labels[r][1]) % spec.n_outputs)
        .collect();
    (concepts, SurrogateDataset { embeddings, concept_labels, outputs })
}
