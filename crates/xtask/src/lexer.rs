//! A comment/string-aware masking pass over Rust source.
//!
//! The auditor's lints are token-level, so they must not fire on words
//! inside comments, doc comments, or string literals ("HashMap" in a
//! doc sentence is not a `HashMap` use). Instead of a full parser, this
//! module splits a source file into per-line *masked* views:
//!
//! * [`MaskedLine::code`] — the line with every comment and every
//!   string/char-literal *body* blanked out (delimiters kept), columns
//!   preserved;
//! * [`MaskedLine::comment`] — the comment text of the line, blanked
//!   everywhere else.
//!
//! Lints scan `code`; the `SAFETY:` / `audit:allow` conventions scan
//! `comment`. The lexer understands line comments, nested block
//! comments, string/byte-string literals with escapes, raw strings with
//! `#` fences, char literals, and tells lifetimes (`'a`) apart from
//! char literals so `'s'` does not start a fake string.

/// One source line split into its code view and its comment view.
/// Column positions are preserved in both.
pub struct MaskedLine {
    pub code: String,
    pub comment: String,
}

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(usize),
    Str,
    RawStr(usize),
    Char,
}

/// Splits `source` into [`MaskedLine`]s. Total lines match the input.
pub fn mask(source: &str) -> Vec<MaskedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let mut state = State::Normal;
    let mut i = 0;

    // Pushes `c` to one stream and a placeholder to the other, so the
    // two views stay column-aligned.
    let push = |code: &mut String, comment: &mut String, c: char, to_code: bool| {
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
        } else if to_code {
            code.push(c);
            comment.push(' ');
        } else {
            code.push(' ');
            comment.push(c);
        }
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    push(&mut code, &mut comment, c, false);
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    push(&mut code, &mut comment, c, false);
                    push(&mut code, &mut comment, '*', false);
                    i += 1;
                }
                '"' => {
                    state = State::Str;
                    push(&mut code, &mut comment, c, true);
                }
                'r' | 'b'
                    if (i == 0 || !is_ident_char(chars[i - 1]))
                        && is_raw_string_start(&chars, i) =>
                {
                    // Consume the prefix (`r` or `br`) and the `#` fences:
                    // at most one `r` after a leading `b`, then hashes only,
                    // so a stray identifier can never be swallowed here.
                    let mut hashes = 0;
                    push(&mut code, &mut comment, c, true);
                    i += 1;
                    if c == 'b' && chars.get(i) == Some(&'r') {
                        push(&mut code, &mut comment, 'r', true);
                        i += 1;
                    }
                    while chars.get(i) == Some(&'#') {
                        hashes += 1;
                        push(&mut code, &mut comment, '#', true);
                        i += 1;
                    }
                    debug_assert_eq!(chars.get(i), Some(&'"'));
                    push(&mut code, &mut comment, '"', true);
                    state = State::RawStr(hashes);
                }
                'b' if next == Some('"') => {
                    push(&mut code, &mut comment, c, true);
                    push(&mut code, &mut comment, '"', true);
                    i += 1;
                    state = State::Str;
                }
                '\'' if is_char_literal(&chars, i) => {
                    state = State::Char;
                    push(&mut code, &mut comment, c, true);
                }
                _ => push(&mut code, &mut comment, c, true),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                }
                push(&mut code, &mut comment, c, false);
            }
            State::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    push(&mut code, &mut comment, c, false);
                    push(&mut code, &mut comment, '*', false);
                    i += 1;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Normal } else { State::BlockComment(depth - 1) };
                    push(&mut code, &mut comment, c, false);
                    push(&mut code, &mut comment, '/', false);
                    i += 1;
                } else {
                    push(&mut code, &mut comment, c, false);
                }
            }
            State::Str => match c {
                '\\' => {
                    // Blank the escape pair so `\"` cannot end the string.
                    // An escaped newline (string line-continuation) must
                    // keep its newline or every later line shifts up.
                    push(&mut code, &mut comment, ' ', true);
                    if let Some(n) = next {
                        push(&mut code, &mut comment, if n == '\n' { '\n' } else { ' ' }, true);
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Normal;
                    push(&mut code, &mut comment, c, true);
                }
                _ => push(&mut code, &mut comment, if c == '\n' { '\n' } else { ' ' }, true),
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    push(&mut code, &mut comment, c, true);
                    for _ in 0..hashes {
                        i += 1;
                        push(&mut code, &mut comment, '#', true);
                    }
                    state = State::Normal;
                } else {
                    push(&mut code, &mut comment, if c == '\n' { '\n' } else { ' ' }, true);
                }
            }
            State::Char => match c {
                '\\' => {
                    push(&mut code, &mut comment, ' ', true);
                    if let Some(n) = next {
                        push(&mut code, &mut comment, if n == '\n' { '\n' } else { ' ' }, true);
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Normal;
                    push(&mut code, &mut comment, c, true);
                }
                _ => push(&mut code, &mut comment, ' ', true),
            },
        }
        i += 1;
    }

    code.lines()
        .map(String::from)
        .zip(comment.lines().map(String::from))
        .map(|(code, comment)| MaskedLine { code, comment })
        .collect()
}

/// Identifier continuation character (so `bar#"` is not a raw string).
fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `r"`, `r#…#"`, `br"`, `br#…#"` at position `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does the `"` at `i` carry `hashes` trailing `#` fences?
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Char literal (`'x'`, `'\n'`) vs lifetime (`'a`, `'static`): a quote
/// followed by an escape is always a literal; a quote followed by one
/// char and a closing quote is a literal; anything else is a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_split_out() {
        let src = "let x = \"HashMap\"; // uses HashMap\nlet m = HashMap::new();\n";
        let lines = mask(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("HashMap"), "string body must be blanked");
        assert!(lines[0].comment.contains("uses HashMap"));
        assert!(lines[1].code.contains("HashMap::new"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nunsafe here\n*/ code()\n";
        let lines = mask(src);
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[2].code.contains("unsafe"));
        assert!(lines[2].comment.contains("unsafe"));
        assert!(lines[3].code.contains("code()"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let src =
            "let s = r#\"Instant::now() \"quoted\"\"#; let c = '\\''; let l: &'static str = x;\n";
        let lines = mask(src);
        assert!(!lines[0].code.contains("Instant"), "raw string body must be blanked");
        assert!(lines[0].code.contains("'static"), "lifetimes must survive masking");
    }

    #[test]
    fn escaped_quote_does_not_end_a_string() {
        let src = "let s = \"a\\\"b unsafe\"; call();\n";
        let lines = mask(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("call()"));
    }

    #[test]
    fn string_line_continuation_keeps_line_alignment() {
        // A `\` before the newline continues the string onto the next
        // line; the masked views must keep one output line per input
        // line or every later lint would report shifted line numbers.
        let src = "let s = \"head \\\n  tail\";\nunsafe { x() }\n";
        let lines = mask(src);
        assert_eq!(lines.len(), 3, "escaped newline must not collapse lines");
        assert!(lines[2].code.contains("unsafe"), "line 3 must still hold the unsafe block");
    }

    #[test]
    fn multiline_raw_strings_stay_out_of_both_views() {
        let src = "let s = r##\"line one unsafe\n//= spec: fake.toml#id\n\"## ; done();\n";
        let lines = mask(src);
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[1].code.contains("spec:"), "raw-string body must not look like code");
        assert!(!lines[1].comment.contains("spec:"), "raw-string body must not look like comments");
        assert!(lines[2].code.contains("done()"));
    }

    #[test]
    fn nested_block_comments_keep_anchor_text_in_the_comment_view() {
        let src = "/* outer /* //= spec: a.toml#b */ still comment */ run();\n";
        let lines = mask(src);
        assert!(lines[0].comment.contains("spec: a.toml#b"));
        assert!(!lines[0].code.contains("spec"));
        assert!(lines[0].code.contains("run()"));
    }

    #[test]
    fn identifier_before_hash_quote_is_not_a_raw_string() {
        // `ar#"x"#` is an identifier, `#`, then a plain string: the `r`
        // inside `ar` must not open a raw string that swallows the rest
        // of the file.
        let src = "m!{ar#\"x\"#} after();\nunsafe { y() }\n";
        let lines = mask(src);
        assert!(lines[0].code.contains("after()"));
        assert!(lines[1].code.contains("unsafe"));
    }
}
