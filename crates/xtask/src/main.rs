//! `cargo xtask` — workspace automation, in the cargo-xtask pattern:
//! a plain, dependency-free binary crate invoked through the alias in
//! `.cargo/config.toml`, so checks run identically on every machine
//! with no tooling beyond cargo itself.
//!
//! ```sh
//! cargo xtask audit            # determinism/unsafety source audit
//! cargo xtask audit --root DIR # audit a different tree (used in tests)
//! cargo xtask audit --format json
//! cargo xtask spec             # requirement-tracing compliance check
//! cargo xtask spec --format json
//! cargo xtask perfdiff         # compare results/BENCH_parallel.json
//!                              # against the committed repo-root record
//! cargo xtask perfdiff --base A --new B --threshold 0.25
//! ```
//!
//! See [`audit`] for what the audit enforces and why, [`spec`] for the
//! duvet-style requirement tracer, [`perfdiff`] for the perf-regression
//! watchdog, and DESIGN.md §10/§12 for how they fit the verification
//! story (`ci.sh` runs all three in the default gate).

#![forbid(unsafe_code)]

mod audit;
mod emit;
mod lexer;
mod perfdiff;
mod spec;
mod toml;

use emit::Format;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask audit [--root <dir>] [--format human|json]\n       \
         cargo xtask spec [--root <dir>] [--format human|json]\n       \
         cargo xtask perfdiff [--base <json>] [--new <json>] [--threshold <frac>]"
    );
    ExitCode::from(2)
}

/// Parses the `[--root <dir>] [--format human|json]` tail shared by
/// the two analysis passes.
fn parse_analysis_args(args: impl Iterator<Item = String>) -> Option<(PathBuf, Format)> {
    let mut root = workspace_root();
    let mut format = Format::Human;
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let value = args.next()?;
        match flag.as_str() {
            "--root" => root = PathBuf::from(value),
            "--format" => match Format::parse(&value) {
                Ok(f) => format = f,
                Err(e) => {
                    eprintln!("{e}");
                    return None;
                }
            },
            _ => return None,
        }
    }
    Some((root, format))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => {
            let Some((root, format)) = parse_analysis_args(args) else { return usage() };
            if audit::run(&root, format) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("spec") => {
            let Some((root, format)) = parse_analysis_args(args) else { return usage() };
            if spec::run(&root, format) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("perfdiff") => {
            let root = workspace_root();
            let mut base = root.join("BENCH_parallel.json");
            let mut new = root.join("results").join("BENCH_parallel.json");
            let mut serve_base = root.join("BENCH_serve.json");
            let mut serve_new = root.join("results").join("BENCH_serve.json");
            let mut threshold = 0.25f64;
            let mut explicit_serve = false;
            while let Some(flag) = args.next() {
                let Some(value) = args.next() else { return usage() };
                match flag.as_str() {
                    "--base" => base = PathBuf::from(value),
                    "--new" => new = PathBuf::from(value),
                    "--serve-base" => {
                        serve_base = PathBuf::from(value);
                        explicit_serve = true;
                    }
                    "--serve-new" => {
                        serve_new = PathBuf::from(value);
                        explicit_serve = true;
                    }
                    "--threshold" => match value.parse() {
                        Ok(t) => threshold = t,
                        Err(_) => return usage(),
                    },
                    _ => return usage(),
                }
            }
            let mut ok = perfdiff::run(&base, &new, threshold);
            // The serve comparison rides along whenever a fresh loadgen
            // report exists (or was named explicitly) — one command
            // gates both benchmark families.
            if explicit_serve || serve_new.exists() {
                ok &= perfdiff::run_serve(&serve_base, &serve_new, threshold);
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask`), which holds whether invoked via the cargo alias or
/// a plain `cargo run -p xtask` from anywhere in the tree.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
