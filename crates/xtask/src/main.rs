//! `cargo xtask` — workspace automation, in the cargo-xtask pattern:
//! a plain, dependency-free binary crate invoked through the alias in
//! `.cargo/config.toml`, so checks run identically on every machine
//! with no tooling beyond cargo itself.
//!
//! ```sh
//! cargo xtask audit            # determinism/unsafety source audit
//! cargo xtask audit --root DIR # audit a different tree (used in tests)
//! ```
//!
//! See [`audit`] for what the audit enforces and why, and DESIGN.md §10
//! for how it fits the verification story (`ci.sh` runs it in the
//! default gate).

#![forbid(unsafe_code)]

mod audit;
mod lexer;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask audit [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("audit") => {
            let root = match (args.next().as_deref(), args.next()) {
                (None, _) => workspace_root(),
                (Some("--root"), Some(dir)) => PathBuf::from(dir),
                _ => return usage(),
            };
            if audit::run(&root) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}

/// The workspace root: two levels above this crate's manifest
/// (`crates/xtask`), which holds whether invoked via the cargo alias or
/// a plain `cargo run -p xtask` from anywhere in the tree.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
