//! `cargo xtask perfdiff` — the perf-regression watchdog.
//!
//! Compares two `BENCH_parallel.json` reports — the committed repo-root
//! record (`--base`) and a fresh run (`--new`, default
//! `results/BENCH_parallel.json`) — and fails with a nonzero exit when
//! the fresh run regresses. Two kinds of checks:
//!
//! * **Absolute floors**, applied to the new report alone, valid in any
//!   mode (`--smoke` or full): the batched explanation must not lose
//!   ground to a single thread (≥ 0.95× at 4 threads), must stay ≥ 1.5×
//!   the retired reference implementation, the int8 surrogate must
//!   clear its fidelity gate, beat the `f32` predict path at both 1 and
//!   4 threads, keep its ≥ 3.9× weight-footprint win, match the
//!   per-row quantized explanation reference byte for byte, and every
//!   stage must remain byte-identical to the 1-thread run. The int8
//!   time checks are same-report ratios, so a slow runner cancels out.
//!
//! * **Relative deltas**, applied only when both reports ran in the
//!   same mode (timings from a `--smoke` run are not comparable to a
//!   full run): each named speedup in the new report must be at least
//!   `(1 - threshold)` of the base value. The default threshold of 25%
//!   absorbs machine noise on shared runners while still catching the
//!   ≥ 10%-class regressions the fixtures seed.
//!
//! The comparison reads *speedups*, not raw seconds: ratios of
//! same-machine timings cancel the machine, so a slower CI box doesn't
//! trip the gate, while a lost parallel dispatch (the regression class
//! this repo has actually shipped) shows up directly.
//!
//! Like the rest of `xtask`, this is dependency-free: the module brings
//! its own minimal JSON reader ([`Json`]) rather than pulling serde
//! into the one crate that must build anywhere cargo does.

use std::fmt;
use std::path::Path;

/// A parsed JSON value. Numbers are uniformly `f64` — every figure in a
/// bench report (counters included) is well inside the 2^53 exact range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Walks a dotted path of object keys.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(8),
                    b'f' => out.push(12),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Bench reports are ASCII; surrogate pairs are out
                        // of scope for this reader.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

/// One comparison line of the report: a metric, both values, the delta.
struct DeltaLine {
    metric: String,
    base: f64,
    new: f64,
    /// Fractional change, negative = the new run is worse.
    delta: f64,
    failed: bool,
}

impl fmt::Display for DeltaLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  {:<55} base={:>8.3}  new={:>8.3}  delta={:>+7.1}%{}",
            self.metric,
            self.base,
            self.new,
            self.delta * 100.0,
            if self.failed { "  REGRESSION" } else { "" }
        )
    }
}

/// Outcome of a perfdiff run, separated for the fixture tests.
pub struct PerfDiff {
    pub failures: Vec<String>,
    pub lines: Vec<String>,
}

impl PerfDiff {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Every named speedup compared relatively between same-mode reports.
/// `(dotted path, human label)`; higher is always better.
const SPEEDUP_PATHS: &[(&str, &str)] = &[
    ("batched_explanation_vs_reference.speedup_fixed_1t_vs_reference", "explain vs reference @1t"),
    ("batched_explanation_vs_reference.speedup_fixed_4t_vs_reference", "explain vs reference @4t"),
    ("speedup_pool_tiled_vs_scoped_scalar", "pool+tiled vs scoped scalar"),
];

fn stage_speedup(report: &Json, stage: &str, threads: f64) -> Option<f64> {
    report.get("stages")?.as_array()?.iter().find_map(|s| {
        (s.get("stage")?.as_str()? == stage && s.get("threads")?.as_f64()? == threads)
            .then(|| s.get("speedup_vs_1_thread")?.as_f64())?
    })
}

/// Runs the full comparison. `threshold` is the tolerated fractional
/// drop for relative checks (0.25 = new may be up to 25% below base).
pub fn compare(base: &Json, new: &Json, threshold: f64) -> PerfDiff {
    let mut failures = Vec::new();
    let mut lines = Vec::new();

    // --- Absolute floors on the new report.
    let floor = |failures: &mut Vec<String>, name: &str, value: Option<f64>, min: f64| match value {
        Some(v) if v >= min => {}
        Some(v) => failures.push(format!("{name} = {v:.3} is below the floor {min}")),
        None => failures.push(format!("{name} missing from the new report")),
    };
    floor(
        &mut failures,
        "batched_explanation @4t speedup_vs_1_thread",
        stage_speedup(new, "batched_explanation", 4.0),
        0.95,
    );
    floor(
        &mut failures,
        "speedup_fixed_4t_vs_reference",
        new.path("batched_explanation_vs_reference.speedup_fixed_4t_vs_reference")
            .and_then(Json::as_f64),
        1.5,
    );
    match new.path("quantized.gate_passes").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => failures.push("int8 surrogate failed its fidelity gate".into()),
        None => failures.push("quantized.gate_passes missing from the new report".into()),
    }
    // Int8 floors as same-report ratios (f32 over q8, higher is better):
    // the quantized path must beat the f32 predict at both thread
    // counts and keep its near-4× weight-footprint win. The time-ratio
    // floors only apply to full-mode reports: at smoke scale the
    // per-batch quantize/widen overhead dominates the tiny matmuls and
    // int8 legitimately loses, so holding smoke runs to the full-size
    // crossover would reject healthy builds. Footprint and identity
    // are scale-independent and stay unconditional.
    let ratio = |num: &str, den: &str| -> Option<f64> {
        let n = new.path(num).and_then(Json::as_f64)?;
        let d = new.path(den).and_then(Json::as_f64)?;
        (d > 0.0).then_some(n / d)
    };
    if new.get("mode").and_then(Json::as_str) == Some("full") {
        floor(
            &mut failures,
            "quantized predict f32/q8 time ratio @1t",
            ratio("quantized.predict_f32_1t_secs", "quantized.predict_q8_1t_secs"),
            1.0,
        );
        floor(
            &mut failures,
            "quantized predict f32/q8 time ratio @4t",
            ratio("quantized.predict_f32_4t_secs", "quantized.predict_q8_4t_secs"),
            1.0,
        );
    }
    floor(
        &mut failures,
        "quantized weight_bytes f32/q8 ratio",
        ratio("quantized.weight_bytes_f32", "quantized.weight_bytes_q8"),
        3.9,
    );
    if new.path("quantized.explain_q8_identical_to_reference").and_then(Json::as_bool) != Some(true)
    {
        failures.push("quantized batched explanation diverged from the per-row reference".into());
    }
    for stage in new.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
        if stage.get("byte_identical_to_1_thread").and_then(Json::as_bool) != Some(true) {
            failures.push(format!(
                "stage {:?} not byte-identical to the 1-thread run",
                stage.get("stage").and_then(Json::as_str).unwrap_or("?")
            ));
        }
    }
    if new.path("batched_explanation_vs_reference.identical_to_reference").and_then(Json::as_bool)
        != Some(true)
    {
        failures.push("batched explanation diverged from the retired reference".into());
    }

    // --- Relative deltas, only between comparable runs.
    let base_mode = base.get("mode").and_then(Json::as_str).unwrap_or("?");
    let new_mode = new.get("mode").and_then(Json::as_str).unwrap_or("?");
    if base_mode != new_mode {
        lines.push(format!(
            "  relative checks skipped: base mode {base_mode:?} != new mode {new_mode:?}"
        ));
        return PerfDiff { failures, lines };
    }

    let mut relative = |metric: String, base_v: Option<f64>, new_v: Option<f64>| {
        let (Some(b), Some(n)) = (base_v, new_v) else { return };
        if b <= 0.0 {
            return;
        }
        let delta = n / b - 1.0;
        let failed = delta < -threshold;
        lines
            .push(DeltaLine { metric: metric.clone(), base: b, new: n, delta, failed }.to_string());
        if failed {
            failures.push(format!(
                "{metric} regressed {:.1}% (base {b:.3} → new {n:.3}, threshold {:.0}%)",
                -delta * 100.0,
                threshold * 100.0
            ));
        }
    };

    for (path, label) in SPEEDUP_PATHS {
        relative(
            (*label).to_string(),
            base.path(path).and_then(Json::as_f64),
            new.path(path).and_then(Json::as_f64),
        );
    }
    for stage in base.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
        let (Some(name), Some(threads)) = (
            stage.get("stage").and_then(Json::as_str),
            stage.get("threads").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if threads <= 1.0 {
            continue; // speedup_vs_1_thread is 1.0 by construction
        }
        relative(
            format!("stage {name} @{threads}t speedup_vs_1_thread"),
            stage.get("speedup_vs_1_thread").and_then(Json::as_f64),
            stage_speedup(new, name, threads),
        );
    }

    PerfDiff { failures, lines }
}

/// CLI entry: loads both reports, prints the delta table, returns
/// success. Used by `main` and exercised end-to-end by the fixtures.
pub fn run(base_path: &Path, new_path: &Path, threshold: f64) -> bool {
    let load = |path: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perfdiff: {e}");
            return false;
        }
    };
    println!(
        "perfdiff: base={} new={} threshold={:.0}%",
        base_path.display(),
        new_path.display(),
        threshold * 100.0
    );
    let diff = compare(&base, &new, threshold);
    for line in &diff.lines {
        println!("{line}");
    }
    if diff.passed() {
        println!("perfdiff: ok");
        true
    } else {
        for failure in &diff.failures {
            eprintln!("perfdiff: FAIL: {failure}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-complete report with tunable headline speedups.
    fn fixture(explain_4t: f64, vs_reference: f64, pool_tiled: f64) -> Json {
        let text = format!(
            r#"{{
              "mode": "full",
              "stages": [
                {{"stage": "surrogate_fit", "threads": 1, "seconds": 2.0,
                  "speedup_vs_1_thread": 1.0, "byte_identical_to_1_thread": true}},
                {{"stage": "surrogate_fit", "threads": 4, "seconds": 0.8,
                  "speedup_vs_1_thread": 2.5, "byte_identical_to_1_thread": true}},
                {{"stage": "batched_explanation", "threads": 1, "seconds": 0.4,
                  "speedup_vs_1_thread": 1.0, "byte_identical_to_1_thread": true}},
                {{"stage": "batched_explanation", "threads": 4, "seconds": 0.2,
                  "speedup_vs_1_thread": {explain_4t}, "byte_identical_to_1_thread": true}}
              ],
              "batched_explanation_vs_reference": {{
                "reference_1t_secs": 0.015, "fixed_1t_secs": 0.007, "fixed_4t_secs": 0.007,
                "speedup_fixed_1t_vs_reference": {vs_reference},
                "speedup_fixed_4t_vs_reference": {vs_reference},
                "identical_to_reference": true
              }},
              "speedup_pool_tiled_vs_scoped_scalar": {pool_tiled},
              "quantized": {{
                "gate_passes": true, "fidelity_drop": 0.005,
                "weight_bytes_f32": 40000, "weight_bytes_q8": 10000,
                "predict_f32_1t_secs": 0.02, "predict_q8_1t_secs": 0.01,
                "predict_f32_4t_secs": 0.008, "predict_q8_4t_secs": 0.004,
                "explain_f32_4t_secs": 0.01, "explain_q8_4t_secs": 0.008,
                "explain_q8_identical_to_reference": true
              }}
            }}"#
        );
        Json::parse(&text).expect("fixture parses")
    }

    #[test]
    fn identical_reports_pass() {
        let report = fixture(1.8, 2.1, 1.55);
        let diff = compare(&report, &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
        assert!(!diff.lines.is_empty(), "delta table must be printed");
    }

    #[test]
    fn seeded_regression_fails() {
        let base = fixture(1.8, 2.1, 1.55);
        // ~40% slower explanation stage: well past the 25% noise band.
        let new = fixture(1.1, 2.1, 1.55);
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("batched_explanation")),
            "failures: {:?}",
            diff.failures
        );
    }

    #[test]
    fn ten_percent_threshold_catches_smaller_regressions() {
        let base = fixture(1.8, 2.1, 1.55);
        let new = fixture(1.8, 1.8, 1.55); // ~14% down on the reference speedup
        assert!(compare(&base, &new, 0.25).passed());
        assert!(!compare(&base, &new, 0.10).passed());
    }

    #[test]
    fn absolute_floors_hold_even_across_modes() {
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(0.5, 2.1, 1.55); // below the 0.95 floor
        if let Json::Obj(fields) = &mut new {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("smoke".into()); // disables relative checks
                }
            }
        }
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("floor")), "{:?}", diff.failures);
        assert!(diff.lines.iter().any(|l| l.contains("skipped")), "{:?}", diff.lines);
    }

    /// Overwrites (or inserts) one field of the fixture's `quantized`
    /// section.
    fn patch_quantized(report: &mut Json, key: &str, value: Json) {
        let Json::Obj(fields) = report else { panic!("fixture root is an object") };
        let q = fields.iter_mut().find(|(k, _)| k == "quantized").map(|(_, v)| v);
        let Some(Json::Obj(qf)) = q else { panic!("fixture has a quantized object") };
        match qf.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => qf.push((key.to_string(), value)),
        }
    }

    #[test]
    fn quantized_floor_catches_a_slow_int8_predict() {
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(1.8, 2.1, 1.55);
        // q8 slower than the 0.008s f32 path at 4 threads.
        patch_quantized(&mut new, "predict_q8_4t_secs", Json::Num(0.02));
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("f32/q8 time ratio @4t")),
            "{:?}",
            diff.failures
        );
    }

    #[test]
    fn quantized_time_floors_are_full_mode_only() {
        // At smoke scale the per-batch quantize overhead dominates the
        // tiny matmuls and int8 loses honestly; the crossover floors
        // must not reject that. Footprint stays enforced everywhere.
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(1.8, 2.1, 1.55);
        if let Json::Obj(fields) = &mut new {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("smoke".into());
                }
            }
        }
        patch_quantized(&mut new, "predict_q8_1t_secs", Json::Num(0.05));
        patch_quantized(&mut new, "predict_q8_4t_secs", Json::Num(0.02));
        let diff = compare(&base, &new, 0.25);
        assert!(
            diff.passed(),
            "smoke runs are exempt from the crossover floors: {:?}",
            diff.failures
        );
        patch_quantized(&mut new, "weight_bytes_q8", Json::Num(20000.0));
        let diff = compare(&base, &new, 0.25);
        assert!(diff.failures.iter().any(|f| f.contains("weight_bytes")), "{:?}", diff.failures);
    }

    #[test]
    fn quantized_floor_catches_a_lost_footprint_win() {
        let mut new = fixture(1.8, 2.1, 1.55);
        patch_quantized(&mut new, "weight_bytes_q8", Json::Num(20000.0)); // only 2×
        let diff = compare(&fixture(1.8, 2.1, 1.55), &new, 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("weight_bytes")), "{:?}", diff.failures);
    }

    #[test]
    fn quantized_explain_divergence_fails() {
        let mut new = fixture(1.8, 2.1, 1.55);
        patch_quantized(&mut new, "explain_q8_identical_to_reference", Json::Bool(false));
        let diff = compare(&fixture(1.8, 2.1, 1.55), &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("per-row reference")),
            "{:?}",
            diff.failures
        );
    }

    #[test]
    fn committed_report_passes_against_itself() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_parallel.json");
        let text = std::fs::read_to_string(&path).expect("committed BENCH_parallel.json");
        let report = Json::parse(&text).expect("committed report parses");
        let diff = compare(&report, &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
    }

    #[test]
    fn json_reader_handles_the_grammar() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, true, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }
}
