//! `cargo xtask perfdiff` — the perf-regression watchdog.
//!
//! Compares two `BENCH_parallel.json` reports — the committed repo-root
//! record (`--base`) and a fresh run (`--new`, default
//! `results/BENCH_parallel.json`) — and fails with a nonzero exit when
//! the fresh run regresses. Two kinds of checks:
//!
//! * **Absolute floors**, applied to the new report alone, valid in any
//!   mode (`--smoke` or full): the batched explanation must not lose
//!   ground to a single thread (≥ 0.95× at 4 threads), must stay ≥ 1.5×
//!   the retired reference implementation, the int8 surrogate must
//!   clear its fidelity gate, beat the `f32` predict path at both 1 and
//!   4 threads, keep its ≥ 3.9× weight-footprint win, match the
//!   per-row quantized explanation reference byte for byte, and every
//!   stage must remain byte-identical to the 1-thread run. The int8
//!   time checks are same-report ratios, so a slow runner cancels out.
//!
//! * **Relative deltas**, applied only when both reports ran in the
//!   same mode (timings from a `--smoke` run are not comparable to a
//!   full run): each named speedup in the new report must be at least
//!   `(1 - threshold)` of the base value. The default threshold of 25%
//!   absorbs machine noise on shared runners while still catching the
//!   ≥ 10%-class regressions the fixtures seed.
//!
//! The comparison reads *speedups*, not raw seconds: ratios of
//! same-machine timings cancel the machine, so a slower CI box doesn't
//! trip the gate, while a lost parallel dispatch (the regression class
//! this repo has actually shipped) shows up directly.
//!
//! Like the rest of `xtask`, this is dependency-free: the module brings
//! its own minimal JSON reader ([`Json`]) rather than pulling serde
//! into the one crate that must build anywhere cargo does.

use std::fmt;
use std::path::Path;

/// A parsed JSON value. Numbers are uniformly `f64` — every figure in a
/// bench report (counters included) is well inside the 2^53 exact range.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Walks a dotted path of object keys.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' | b'\\' | b'/' => out.push(esc),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'b' => out.push(8),
                    b'f' => out.push(12),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Bench reports are ASCII; surrogate pairs are out
                        // of scope for this reader.
                        let ch = char::from_u32(code).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".into())
}

/// One comparison line of the report: a metric, both values, the delta.
struct DeltaLine {
    metric: String,
    base: f64,
    new: f64,
    /// Fractional change, negative = the new run is worse.
    delta: f64,
    failed: bool,
}

impl fmt::Display for DeltaLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  {:<55} base={:>8.3}  new={:>8.3}  delta={:>+7.1}%{}",
            self.metric,
            self.base,
            self.new,
            self.delta * 100.0,
            if self.failed { "  REGRESSION" } else { "" }
        )
    }
}

/// Outcome of a perfdiff run, separated for the fixture tests.
pub struct PerfDiff {
    pub failures: Vec<String>,
    pub lines: Vec<String>,
}

impl PerfDiff {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Every named speedup compared relatively between same-mode reports.
/// `(dotted path, human label)`; higher is always better.
const SPEEDUP_PATHS: &[(&str, &str)] = &[
    ("batched_explanation_vs_reference.speedup_fixed_1t_vs_reference", "explain vs reference @1t"),
    ("batched_explanation_vs_reference.speedup_fixed_4t_vs_reference", "explain vs reference @4t"),
    ("speedup_pool_tiled_vs_scoped_scalar", "pool+tiled vs scoped scalar"),
];

fn stage_speedup(report: &Json, stage: &str, threads: f64) -> Option<f64> {
    report.get("stages")?.as_array()?.iter().find_map(|s| {
        (s.get("stage")?.as_str()? == stage && s.get("threads")?.as_f64()? == threads)
            .then(|| s.get("speedup_vs_1_thread")?.as_f64())?
    })
}

/// Runs the full comparison. `threshold` is the tolerated fractional
/// drop for relative checks (0.25 = new may be up to 25% below base).
pub fn compare(base: &Json, new: &Json, threshold: f64) -> PerfDiff {
    let mut failures = Vec::new();
    let mut lines = Vec::new();

    // --- Absolute floors on the new report.
    let floor = |failures: &mut Vec<String>, name: &str, value: Option<f64>, min: f64| match value {
        Some(v) if v >= min => {}
        Some(v) => failures.push(format!("{name} = {v:.3} is below the floor {min}")),
        None => failures.push(format!("{name} missing from the new report")),
    };
    floor(
        &mut failures,
        "batched_explanation @4t speedup_vs_1_thread",
        stage_speedup(new, "batched_explanation", 4.0),
        0.95,
    );
    floor(
        &mut failures,
        "speedup_fixed_4t_vs_reference",
        new.path("batched_explanation_vs_reference.speedup_fixed_4t_vs_reference")
            .and_then(Json::as_f64),
        1.5,
    );
    match new.path("quantized.gate_passes").and_then(Json::as_bool) {
        Some(true) => {}
        Some(false) => failures.push("int8 surrogate failed its fidelity gate".into()),
        None => failures.push("quantized.gate_passes missing from the new report".into()),
    }
    // Int8 floors as same-report ratios (f32 over q8, higher is better):
    // the quantized path must beat the f32 predict at both thread
    // counts and keep its near-4× weight-footprint win. The time-ratio
    // floors only apply to full-mode reports: at smoke scale the
    // per-batch quantize/widen overhead dominates the tiny matmuls and
    // int8 legitimately loses, so holding smoke runs to the full-size
    // crossover would reject healthy builds. Footprint and identity
    // are scale-independent and stay unconditional.
    let ratio = |num: &str, den: &str| -> Option<f64> {
        let n = new.path(num).and_then(Json::as_f64)?;
        let d = new.path(den).and_then(Json::as_f64)?;
        (d > 0.0).then_some(n / d)
    };
    if new.get("mode").and_then(Json::as_str) == Some("full") {
        floor(
            &mut failures,
            "quantized predict f32/q8 time ratio @1t",
            ratio("quantized.predict_f32_1t_secs", "quantized.predict_q8_1t_secs"),
            1.0,
        );
        floor(
            &mut failures,
            "quantized predict f32/q8 time ratio @4t",
            ratio("quantized.predict_f32_4t_secs", "quantized.predict_q8_4t_secs"),
            1.0,
        );
    }
    floor(
        &mut failures,
        "quantized weight_bytes f32/q8 ratio",
        ratio("quantized.weight_bytes_f32", "quantized.weight_bytes_q8"),
        3.9,
    );
    if new.path("quantized.explain_q8_identical_to_reference").and_then(Json::as_bool) != Some(true)
    {
        failures.push("quantized batched explanation diverged from the per-row reference".into());
    }
    for stage in new.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
        if stage.get("byte_identical_to_1_thread").and_then(Json::as_bool) != Some(true) {
            failures.push(format!(
                "stage {:?} not byte-identical to the 1-thread run",
                stage.get("stage").and_then(Json::as_str).unwrap_or("?")
            ));
        }
    }
    if new.path("batched_explanation_vs_reference.identical_to_reference").and_then(Json::as_bool)
        != Some(true)
    {
        failures.push("batched explanation diverged from the retired reference".into());
    }

    // --- Relative deltas, only between comparable runs.
    let base_mode = base.get("mode").and_then(Json::as_str).unwrap_or("?");
    let new_mode = new.get("mode").and_then(Json::as_str).unwrap_or("?");
    if base_mode != new_mode {
        lines.push(format!(
            "  relative checks skipped: base mode {base_mode:?} != new mode {new_mode:?}"
        ));
        return PerfDiff { failures, lines };
    }

    let mut relative = |metric: String, base_v: Option<f64>, new_v: Option<f64>| {
        let (Some(b), Some(n)) = (base_v, new_v) else { return };
        if b <= 0.0 {
            return;
        }
        let delta = n / b - 1.0;
        let failed = delta < -threshold;
        lines
            .push(DeltaLine { metric: metric.clone(), base: b, new: n, delta, failed }.to_string());
        if failed {
            failures.push(format!(
                "{metric} regressed {:.1}% (base {b:.3} → new {n:.3}, threshold {:.0}%)",
                -delta * 100.0,
                threshold * 100.0
            ));
        }
    };

    for (path, label) in SPEEDUP_PATHS {
        relative(
            (*label).to_string(),
            base.path(path).and_then(Json::as_f64),
            new.path(path).and_then(Json::as_f64),
        );
    }
    for stage in base.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
        let (Some(name), Some(threads)) = (
            stage.get("stage").and_then(Json::as_str),
            stage.get("threads").and_then(Json::as_f64),
        ) else {
            continue;
        };
        if threads <= 1.0 {
            continue; // speedup_vs_1_thread is 1.0 by construction
        }
        relative(
            format!("stage {name} @{threads}t speedup_vs_1_thread"),
            stage.get("speedup_vs_1_thread").and_then(Json::as_f64),
            stage_speedup(new, name, threads),
        );
    }

    PerfDiff { failures, lines }
}

/// Walks `modes.<mode>.<clients>` entries of a serve report as
/// `(mode, clients, entry)` triples, sorted by client count.
fn serve_entries<'a>(report: &'a Json, mode: &str) -> Vec<(u64, &'a Json)> {
    let mut out: Vec<(u64, &Json)> = match report.path(&format!("modes.{mode}")) {
        Some(Json::Obj(fields)) => {
            fields.iter().filter_map(|(k, v)| Some((k.parse::<u64>().ok()?, v))).collect()
        }
        _ => Vec::new(),
    };
    out.sort_by_key(|(c, _)| *c);
    out
}

/// Compares two `BENCH_serve.json` loadgen reports. Same philosophy as
/// [`compare`]: absolute floors on the new report alone (correctness
/// contracts plus the coalescing win), relative RPS/p99 deltas only
/// between same-mode runs.
///
/// Floors, valid in any mode:
/// * zero 5xx responses in every (mode, clients) cell — the daemon may
///   shed load with 429s but must never error;
/// * `identity.mismatched == 0` — coalesced and sequential bodies are
///   byte-identical per (clients, client, request);
/// * `reload.byte_identical` and `reload.generation_bumped` — a hot
///   reload of unchanged sources bumps the generation without touching
///   response bytes.
///
/// Full-mode only (smoke runs too few requests for stable timings):
/// * coalesced sustained RPS ≥ sequential at the highest client count
///   — the entire point of the coalescing engine.
pub fn compare_serve(base: Option<&Json>, new: &Json, threshold: f64) -> PerfDiff {
    let mut failures = Vec::new();
    let mut lines = Vec::new();

    for mode in ["sequential", "coalesced"] {
        let entries = serve_entries(new, mode);
        if entries.is_empty() {
            failures.push(format!("modes.{mode} missing from the new serve report"));
            continue;
        }
        for (clients, entry) in entries {
            match entry.get("s5xx").and_then(Json::as_f64) {
                Some(0.0) => {}
                Some(n) => {
                    failures.push(format!("{mode} @{clients} clients returned {n} 5xx responses"))
                }
                None => failures.push(format!("{mode} @{clients}: s5xx missing")),
            }
        }
    }
    match new.path("identity.mismatched").and_then(Json::as_f64) {
        Some(0.0) => {}
        Some(n) => failures.push(format!(
            "{n} coalesced responses differ from their sequential bytes (identity.mismatched)"
        )),
        None => failures.push("identity.mismatched missing from the serve report".into()),
    }
    if new.path("reload.byte_identical").and_then(Json::as_bool) != Some(true) {
        failures.push("hot reload changed response bytes (reload.byte_identical)".into());
    }
    if new.path("reload.generation_bumped").and_then(Json::as_bool) != Some(true) {
        failures.push("hot reload did not bump the generation".into());
    }
    let smoke = new.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    if !smoke {
        match new.get("speedup_coalesced_at_max_clients").and_then(Json::as_f64) {
            Some(s) if s >= 1.0 => {}
            Some(s) => failures.push(format!(
                "coalescing lost to sequential dispatch at max clients ({s:.3}× < 1.0×)"
            )),
            None => {
                failures.push("speedup_coalesced_at_max_clients missing from the report".into())
            }
        }
    }

    // --- Relative deltas, only between comparable runs.
    let Some(base) = base else {
        lines.push("  relative checks skipped: no base serve report".into());
        return PerfDiff { failures, lines };
    };
    let base_smoke = base.get("smoke").and_then(Json::as_bool);
    if base_smoke != Some(smoke) {
        lines.push(format!(
            "  relative checks skipped: base smoke={base_smoke:?} != new smoke={smoke}"
        ));
        return PerfDiff { failures, lines };
    }

    for mode in ["sequential", "coalesced"] {
        for (clients, base_entry) in serve_entries(base, mode) {
            let new_entry = new.path(&format!("modes.{mode}.{clients}"));
            // Higher-is-better RPS uses the speedup convention directly;
            // lower-is-better p99 compares inverted so one code path
            // handles both directions.
            let pairs = [("rps", false), ("p99_ms", true)];
            for (key, lower_is_better) in pairs {
                let (Some(b), Some(n)) = (
                    base_entry.get(key).and_then(Json::as_f64),
                    new_entry.and_then(|e| e.get(key)).and_then(Json::as_f64),
                ) else {
                    continue;
                };
                if b <= 0.0 || n <= 0.0 {
                    continue;
                }
                let delta = if lower_is_better { b / n - 1.0 } else { n / b - 1.0 };
                let failed = delta < -threshold;
                let metric = format!("serve {mode} @{clients} clients {key}");
                lines.push(
                    DeltaLine { metric: metric.clone(), base: b, new: n, delta, failed }
                        .to_string(),
                );
                if failed {
                    failures.push(format!(
                        "{metric} regressed {:.1}% (base {b:.3} → new {n:.3}, threshold {:.0}%)",
                        -delta * 100.0,
                        threshold * 100.0
                    ));
                }
            }
        }
    }

    PerfDiff { failures, lines }
}

/// CLI entry for the serve comparison. The base report is optional —
/// floors still run without one — but the new report must parse.
pub fn run_serve(base_path: &Path, new_path: &Path, threshold: f64) -> bool {
    let load = |path: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    };
    let new = match load(new_path) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("perfdiff: {e}");
            return false;
        }
    };
    // A missing committed record is fine: floors only.
    let base = load(base_path).ok();
    println!(
        "perfdiff[serve]: base={} new={} threshold={:.0}%",
        if base.is_some() { base_path.display().to_string() } else { "(none)".into() },
        new_path.display(),
        threshold * 100.0
    );
    let diff = compare_serve(base.as_ref(), &new, threshold);
    for line in &diff.lines {
        println!("{line}");
    }
    if diff.passed() {
        println!("perfdiff[serve]: ok");
        true
    } else {
        for failure in &diff.failures {
            eprintln!("perfdiff[serve]: FAIL: {failure}");
        }
        false
    }
}

/// CLI entry: loads both reports, prints the delta table, returns
/// success. Used by `main` and exercised end-to-end by the fixtures.
pub fn run(base_path: &Path, new_path: &Path, threshold: f64) -> bool {
    let load = |path: &Path| -> Result<Json, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perfdiff: {e}");
            return false;
        }
    };
    println!(
        "perfdiff: base={} new={} threshold={:.0}%",
        base_path.display(),
        new_path.display(),
        threshold * 100.0
    );
    let diff = compare(&base, &new, threshold);
    for line in &diff.lines {
        println!("{line}");
    }
    if diff.passed() {
        println!("perfdiff: ok");
        true
    } else {
        for failure in &diff.failures {
            eprintln!("perfdiff: FAIL: {failure}");
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal schema-complete report with tunable headline speedups.
    fn fixture(explain_4t: f64, vs_reference: f64, pool_tiled: f64) -> Json {
        let text = format!(
            r#"{{
              "mode": "full",
              "stages": [
                {{"stage": "surrogate_fit", "threads": 1, "seconds": 2.0,
                  "speedup_vs_1_thread": 1.0, "byte_identical_to_1_thread": true}},
                {{"stage": "surrogate_fit", "threads": 4, "seconds": 0.8,
                  "speedup_vs_1_thread": 2.5, "byte_identical_to_1_thread": true}},
                {{"stage": "batched_explanation", "threads": 1, "seconds": 0.4,
                  "speedup_vs_1_thread": 1.0, "byte_identical_to_1_thread": true}},
                {{"stage": "batched_explanation", "threads": 4, "seconds": 0.2,
                  "speedup_vs_1_thread": {explain_4t}, "byte_identical_to_1_thread": true}}
              ],
              "batched_explanation_vs_reference": {{
                "reference_1t_secs": 0.015, "fixed_1t_secs": 0.007, "fixed_4t_secs": 0.007,
                "speedup_fixed_1t_vs_reference": {vs_reference},
                "speedup_fixed_4t_vs_reference": {vs_reference},
                "identical_to_reference": true
              }},
              "speedup_pool_tiled_vs_scoped_scalar": {pool_tiled},
              "quantized": {{
                "gate_passes": true, "fidelity_drop": 0.005,
                "weight_bytes_f32": 40000, "weight_bytes_q8": 10000,
                "predict_f32_1t_secs": 0.02, "predict_q8_1t_secs": 0.01,
                "predict_f32_4t_secs": 0.008, "predict_q8_4t_secs": 0.004,
                "explain_f32_4t_secs": 0.01, "explain_q8_4t_secs": 0.008,
                "explain_q8_identical_to_reference": true
              }}
            }}"#
        );
        Json::parse(&text).expect("fixture parses")
    }

    #[test]
    fn identical_reports_pass() {
        let report = fixture(1.8, 2.1, 1.55);
        let diff = compare(&report, &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
        assert!(!diff.lines.is_empty(), "delta table must be printed");
    }

    #[test]
    fn seeded_regression_fails() {
        let base = fixture(1.8, 2.1, 1.55);
        // ~40% slower explanation stage: well past the 25% noise band.
        let new = fixture(1.1, 2.1, 1.55);
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("batched_explanation")),
            "failures: {:?}",
            diff.failures
        );
    }

    #[test]
    fn ten_percent_threshold_catches_smaller_regressions() {
        let base = fixture(1.8, 2.1, 1.55);
        let new = fixture(1.8, 1.8, 1.55); // ~14% down on the reference speedup
        assert!(compare(&base, &new, 0.25).passed());
        assert!(!compare(&base, &new, 0.10).passed());
    }

    #[test]
    fn absolute_floors_hold_even_across_modes() {
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(0.5, 2.1, 1.55); // below the 0.95 floor
        if let Json::Obj(fields) = &mut new {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("smoke".into()); // disables relative checks
                }
            }
        }
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("floor")), "{:?}", diff.failures);
        assert!(diff.lines.iter().any(|l| l.contains("skipped")), "{:?}", diff.lines);
    }

    /// Overwrites (or inserts) one field of the fixture's `quantized`
    /// section.
    fn patch_quantized(report: &mut Json, key: &str, value: Json) {
        let Json::Obj(fields) = report else { panic!("fixture root is an object") };
        let q = fields.iter_mut().find(|(k, _)| k == "quantized").map(|(_, v)| v);
        let Some(Json::Obj(qf)) = q else { panic!("fixture has a quantized object") };
        match qf.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => qf.push((key.to_string(), value)),
        }
    }

    #[test]
    fn quantized_floor_catches_a_slow_int8_predict() {
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(1.8, 2.1, 1.55);
        // q8 slower than the 0.008s f32 path at 4 threads.
        patch_quantized(&mut new, "predict_q8_4t_secs", Json::Num(0.02));
        let diff = compare(&base, &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("f32/q8 time ratio @4t")),
            "{:?}",
            diff.failures
        );
    }

    #[test]
    fn quantized_time_floors_are_full_mode_only() {
        // At smoke scale the per-batch quantize overhead dominates the
        // tiny matmuls and int8 loses honestly; the crossover floors
        // must not reject that. Footprint stays enforced everywhere.
        let base = fixture(1.8, 2.1, 1.55);
        let mut new = fixture(1.8, 2.1, 1.55);
        if let Json::Obj(fields) = &mut new {
            for (k, v) in fields.iter_mut() {
                if k == "mode" {
                    *v = Json::Str("smoke".into());
                }
            }
        }
        patch_quantized(&mut new, "predict_q8_1t_secs", Json::Num(0.05));
        patch_quantized(&mut new, "predict_q8_4t_secs", Json::Num(0.02));
        let diff = compare(&base, &new, 0.25);
        assert!(
            diff.passed(),
            "smoke runs are exempt from the crossover floors: {:?}",
            diff.failures
        );
        patch_quantized(&mut new, "weight_bytes_q8", Json::Num(20000.0));
        let diff = compare(&base, &new, 0.25);
        assert!(diff.failures.iter().any(|f| f.contains("weight_bytes")), "{:?}", diff.failures);
    }

    #[test]
    fn quantized_floor_catches_a_lost_footprint_win() {
        let mut new = fixture(1.8, 2.1, 1.55);
        patch_quantized(&mut new, "weight_bytes_q8", Json::Num(20000.0)); // only 2×
        let diff = compare(&fixture(1.8, 2.1, 1.55), &new, 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("weight_bytes")), "{:?}", diff.failures);
    }

    #[test]
    fn quantized_explain_divergence_fails() {
        let mut new = fixture(1.8, 2.1, 1.55);
        patch_quantized(&mut new, "explain_q8_identical_to_reference", Json::Bool(false));
        let diff = compare(&fixture(1.8, 2.1, 1.55), &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("per-row reference")),
            "{:?}",
            diff.failures
        );
    }

    #[test]
    fn committed_report_passes_against_itself() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_parallel.json");
        let text = std::fs::read_to_string(&path).expect("committed BENCH_parallel.json");
        let report = Json::parse(&text).expect("committed report parses");
        let diff = compare(&report, &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
    }

    /// A schema-complete serve report with tunable coalesced RPS at the
    /// highest client count.
    fn serve_fixture(coalesced_rps_8: f64, mismatched: f64, smoke: bool) -> Json {
        let cell = |rps: f64, p99: f64| {
            format!(
                r#"{{"mean_batch": 2.5, "p50_ms": 1.0, "p999_ms": {p99}, "p99_ms": {p99},
                     "requests": 150, "rps": {rps}, "s4xx": 0, "s5xx": 0}}"#
            )
        };
        let text = format!(
            r#"{{
              "clients": [1, 4, 8],
              "identity": {{"compared": 1200, "mismatched": {mismatched}}},
              "modes": {{
                "coalesced": {{"1": {c1}, "4": {c4}, "8": {c8}}},
                "sequential": {{"1": {s1}, "4": {s4}, "8": {s8}}}
              }},
              "reload": {{"byte_identical": true, "generation_bumped": true}},
              "requests_per_client": 150,
              "smoke": {smoke},
              "speedup_coalesced_at_max_clients": {speedup}
            }}"#,
            c1 = cell(90.0, 2.0),
            c4 = cell(coalesced_rps_8 * 0.8, 3.0),
            c8 = cell(coalesced_rps_8, 4.0),
            s1 = cell(100.0, 2.0),
            s4 = cell(110.0, 5.0),
            s8 = cell(120.0, 8.0),
            speedup = coalesced_rps_8 / 120.0,
        );
        Json::parse(&text).expect("serve fixture parses")
    }

    #[test]
    fn serve_identical_reports_pass() {
        let report = serve_fixture(180.0, 0.0, false);
        let diff = compare_serve(Some(&report), &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
        assert!(!diff.lines.is_empty(), "delta table must be printed");
    }

    #[test]
    fn serve_floors_run_without_a_base() {
        let diff = compare_serve(None, &serve_fixture(180.0, 0.0, false), 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
        assert!(diff.lines.iter().any(|l| l.contains("skipped")), "{:?}", diff.lines);
    }

    #[test]
    fn serve_byte_mismatch_fails() {
        let diff = compare_serve(None, &serve_fixture(180.0, 3.0, false), 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("mismatched")), "{:?}", diff.failures);
    }

    #[test]
    fn serve_lost_coalescing_win_fails_in_full_mode_only() {
        // Coalesced slower than sequential at 8 clients: the tentpole
        // regression. Full mode trips the floor; smoke is exempt.
        let slow = serve_fixture(100.0, 0.0, false);
        let diff = compare_serve(None, &slow, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("lost to sequential")),
            "{:?}",
            diff.failures
        );
        let smoke = serve_fixture(100.0, 0.0, true);
        assert!(compare_serve(None, &smoke, 0.25).passed());
    }

    #[test]
    fn serve_5xx_fails() {
        let mut report = serve_fixture(180.0, 0.0, false);
        let cell = report
            .path("modes.coalesced.8")
            .cloned()
            .expect("fixture has the 8-client coalesced cell");
        let Json::Obj(fields) = &mut report else { panic!() };
        let modes = fields.iter_mut().find(|(k, _)| k == "modes").map(|(_, v)| v);
        let Some(Json::Obj(modes)) = modes else { panic!() };
        let co = modes.iter_mut().find(|(k, _)| k == "coalesced").map(|(_, v)| v);
        let Some(Json::Obj(co)) = co else { panic!() };
        let Json::Obj(mut cell) = cell else { panic!() };
        for (k, v) in cell.iter_mut() {
            if k == "s5xx" {
                *v = Json::Num(2.0);
            }
        }
        let slot = co.iter_mut().find(|(k, _)| k == "8").map(|(_, v)| v).expect("cell 8");
        *slot = Json::Obj(cell);
        let diff = compare_serve(None, &report, 0.25);
        assert!(!diff.passed());
        assert!(diff.failures.iter().any(|f| f.contains("5xx")), "{:?}", diff.failures);
    }

    #[test]
    fn serve_rps_regression_fails_relatively() {
        let base = serve_fixture(180.0, 0.0, false);
        let new = serve_fixture(125.0, 0.0, false); // ≥1× sequential, ~31% down vs base
        let diff = compare_serve(Some(&base), &new, 0.25);
        assert!(!diff.passed());
        assert!(
            diff.failures.iter().any(|f| f.contains("coalesced @8 clients rps")),
            "{:?}",
            diff.failures
        );
    }

    #[test]
    fn serve_mixed_modes_skip_relative_checks() {
        let base = serve_fixture(180.0, 0.0, true);
        let new = serve_fixture(125.0, 0.0, false); // would regress vs base
        let diff = compare_serve(Some(&base), &new, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
        assert!(diff.lines.iter().any(|l| l.contains("skipped")), "{:?}", diff.lines);
    }

    #[test]
    fn committed_serve_report_passes_against_itself() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
        let path = root.join("BENCH_serve.json");
        if !path.exists() {
            return; // record lands with the first full loadgen run
        }
        let text = std::fs::read_to_string(&path).expect("committed BENCH_serve.json");
        let report = Json::parse(&text).expect("committed serve report parses");
        let diff = compare_serve(Some(&report), &report, 0.25);
        assert!(diff.passed(), "failures: {:?}", diff.failures);
    }

    #[test]
    fn json_reader_handles_the_grammar() {
        let v = Json::parse(r#"{"a": [1, -2.5e3, true, null, "x\n\"y\""], "b": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4].as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("[1, 2").is_err());
    }
}
