//! A hand-rolled parser for the `specs/*.toml` requirement files.
//!
//! Same zero-dependency discipline as `perfdiff`'s JSON reader: the
//! spec engine must not pull a TOML crate into the workspace, so this
//! module parses exactly the subset the requirement files use —
//! top-level `key = "value"` pairs, `[[spec]]` / `[[exception]]`
//! array-of-table headers, basic strings with the common escapes,
//! `'''…'''` multi-line literal strings, `#` comments, and blank
//! lines. Anything else is a hard error with a line number: a spec
//! file that cannot be parsed is a compliance failure, not a warning.
//!
//! The shape mirrors s2n-quic's duvet requirement files:
//!
//! ```toml
//! target = "DESIGN.md#section-8"
//!
//! [[spec]]
//! id = "k-ascending"
//! level = "MUST"
//! quote = '''
//! Reductions MUST accumulate in ascending k order.
//! '''
//!
//! [[exception]]
//! spec = "k-ascending"
//! reason = "scalar tail is covered by the kernel equivalence tests"
//! ```

/// Requirement strength. `MUST` is enforced by the checker; `SHOULD`
/// and `MAY` are reported in coverage but never fail the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Must,
    Should,
    May,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Must => "MUST",
            Level::Should => "SHOULD",
            Level::May => "MAY",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s {
            "MUST" => Some(Level::Must),
            "SHOULD" => Some(Level::Should),
            "MAY" => Some(Level::May),
            _ => None,
        }
    }
}

/// One `[[spec]]` table: a quoted normative requirement.
#[derive(Debug, Clone)]
pub struct Requirement {
    pub id: String,
    pub level: Level,
    pub quote: String,
    /// Line of the `[[spec]]` header, for diagnostics.
    pub line: usize,
}

/// One `[[exception]]` table: a requirement deliberately not anchored
/// in code, with the reason recorded in the spec file itself.
#[derive(Debug, Clone)]
pub struct SpecException {
    pub spec: String,
    pub reason: String,
    pub line: usize,
}

/// A parsed requirement file.
#[derive(Debug, Clone, Default)]
pub struct SpecFile {
    /// What the requirements are quoted from (a document section).
    pub target: String,
    pub specs: Vec<Requirement>,
    pub exceptions: Vec<SpecException>,
}

/// A parse or validation failure, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Which table the parser is currently filling.
enum Table {
    Top,
    Spec { id: Option<String>, level: Option<Level>, quote: Option<String>, line: usize },
    Exception { spec: Option<String>, reason: Option<String>, line: usize },
}

/// Parses one requirement file. Validates as it goes: duplicate ids,
/// unknown levels, missing fields, and exceptions naming unknown
/// requirements are all errors.
pub fn parse(source: &str) -> Result<SpecFile, ParseError> {
    let mut out = SpecFile::default();
    let mut table = Table::Top;
    let lines: Vec<&str> = source.lines().collect();
    let mut i = 0;

    while i < lines.len() {
        let lineno = i + 1;
        let line = lines[i].trim();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            close_table(&mut out, table, lineno)?;
            table = match header.trim() {
                "spec" => Table::Spec { id: None, level: None, quote: None, line: lineno },
                "exception" => Table::Exception { spec: None, reason: None, line: lineno },
                other => return err(lineno, format!("unknown table [[{other}]]")),
            };
            i += 1;
            continue;
        }
        if line.starts_with('[') {
            return err(lineno, format!("unsupported table header {line}"));
        }

        let Some((key, rest)) = line.split_once('=') else {
            return err(lineno, format!("expected `key = value`, got {line:?}"));
        };
        let key = key.trim();
        let (value, consumed) = parse_value(&lines, i, rest.trim())?;
        match (&mut table, key) {
            (Table::Top, "target") => out.target = value,
            (Table::Top, other) => return err(lineno, format!("unknown top-level key {other:?}")),
            (Table::Spec { id, .. }, "id") => set_once(id, value, key, lineno)?,
            (Table::Spec { level, .. }, "level") => {
                let parsed = Level::parse(&value).ok_or(ParseError {
                    line: lineno,
                    message: format!("unknown level {value:?} (expected MUST, SHOULD, or MAY)"),
                })?;
                set_once(level, parsed, key, lineno)?;
            }
            (Table::Spec { quote, .. }, "quote") => set_once(quote, value, key, lineno)?,
            (Table::Spec { .. }, other) => {
                return err(lineno, format!("unknown [[spec]] key {other:?}"))
            }
            (Table::Exception { spec, .. }, "spec") => set_once(spec, value, key, lineno)?,
            (Table::Exception { reason, .. }, "reason") => set_once(reason, value, key, lineno)?,
            (Table::Exception { .. }, other) => {
                return err(lineno, format!("unknown [[exception]] key {other:?}"))
            }
        }
        i += consumed;
    }
    close_table(&mut out, table, lines.len() + 1)?;

    // Cross-checks: ids are unique and exceptions reference real specs.
    for (n, spec) in out.specs.iter().enumerate() {
        if out.specs[..n].iter().any(|s| s.id == spec.id) {
            return err(spec.line, format!("duplicate requirement id {:?}", spec.id));
        }
    }
    for exc in &out.exceptions {
        if !out.specs.iter().any(|s| s.id == exc.spec) {
            return err(exc.line, format!("exception names unknown requirement {:?}", exc.spec));
        }
    }
    Ok(out)
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str, line: usize) -> Result<(), ParseError> {
    if slot.is_some() {
        return err(line, format!("duplicate key {key:?}"));
    }
    *slot = Some(value);
    Ok(())
}

/// Flushes the table being filled, checking required fields.
fn close_table(out: &mut SpecFile, table: Table, at: usize) -> Result<(), ParseError> {
    match table {
        Table::Top => {}
        Table::Spec { id, level, quote, line } => {
            let id = id.ok_or(ParseError { line, message: "[[spec]] missing `id`".into() })?;
            let level = level
                .ok_or(ParseError { line, message: format!("[[spec]] {id:?} missing `level`") })?;
            let quote = quote
                .ok_or(ParseError { line, message: format!("[[spec]] {id:?} missing `quote`") })?;
            if quote.trim().is_empty() {
                return err(line, format!("[[spec]] {id:?} has an empty quote"));
            }
            let _ = at;
            out.specs.push(Requirement { id, level, quote, line });
        }
        Table::Exception { spec, reason, line } => {
            let spec =
                spec.ok_or(ParseError { line, message: "[[exception]] missing `spec`".into() })?;
            let reason = reason.ok_or(ParseError {
                line,
                message: format!("[[exception]] for {spec:?} missing `reason`"),
            })?;
            if reason.trim().is_empty() {
                return err(line, format!("[[exception]] for {spec:?} has an empty reason"));
            }
            out.exceptions.push(SpecException { spec, reason, line });
        }
    }
    Ok(())
}

/// Parses the value part of a `key = value` line starting at `lines[i]`.
/// Returns the string value and how many source lines were consumed.
fn parse_value(lines: &[&str], i: usize, rest: &str) -> Result<(String, usize), ParseError> {
    let lineno = i + 1;
    if let Some(body) = rest.strip_prefix("'''") {
        // Multi-line literal string. A closer on the opening line makes
        // it single-line; otherwise the body runs to the next `'''`.
        if let Some(inline) = body.find("'''") {
            return Ok((body[..inline].to_string(), 1));
        }
        if !body.trim().is_empty() {
            return err(lineno, "text after opening ''' must start on the next line");
        }
        let mut collected = Vec::new();
        for (extra, raw) in lines[i + 1..].iter().enumerate() {
            if raw.trim_end() == "'''" {
                return Ok((collected.join("\n"), extra + 2));
            }
            collected.push(raw.to_string());
        }
        return err(lineno, "unterminated ''' string");
    }
    if let Some(body) = rest.strip_prefix('"') {
        return Ok((parse_basic_string(body, lineno)?, 1));
    }
    if let Some(body) = rest.strip_prefix('\'') {
        let Some(end) = body.find('\'') else {
            return err(lineno, "unterminated literal string");
        };
        if !after_is_comment_or_empty(&body[end + 1..]) {
            return err(lineno, "trailing garbage after string value");
        }
        return Ok((body[..end].to_string(), 1));
    }
    err(lineno, format!("unsupported value {rest:?} (expected a string)"))
}

/// Basic `"…"` string with `\"`, `\\`, `\n`, `\t` escapes.
fn parse_basic_string(body: &str, lineno: usize) -> Result<String, ParseError> {
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let rest: String = chars.collect();
                if !after_is_comment_or_empty(&rest) {
                    return err(lineno, "trailing garbage after string value");
                }
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => return err(lineno, format!("unsupported escape \\{other}")),
                None => return err(lineno, "dangling escape at end of line"),
            },
            other => out.push(other),
        }
    }
    err(lineno, "unterminated string")
}

fn after_is_comment_or_empty(rest: &str) -> bool {
    let rest = rest.trim();
    rest.is_empty() || rest.starts_with('#')
}

#[cfg(test)]
mod tests {
    use super::*;

    const WELL_FORMED: &str = r##"
# A requirement file.
target = "DESIGN.md#section-8"

[[spec]]
id = "k-ascending"
level = "MUST"
quote = '''
Reductions MUST accumulate
in ascending k order.
'''

[[spec]]
id = "advisory"
level = "SHOULD"
quote = "Single-line quotes work too."

[[exception]]
spec = "advisory"
reason = "covered by the equivalence suite"
"##;

    #[test]
    fn parses_quotes_levels_and_exceptions() {
        let file = parse(WELL_FORMED).expect("well-formed file parses");
        assert_eq!(file.target, "DESIGN.md#section-8");
        assert_eq!(file.specs.len(), 2);
        assert_eq!(file.specs[0].id, "k-ascending");
        assert_eq!(file.specs[0].level, Level::Must);
        assert_eq!(file.specs[0].quote, "Reductions MUST accumulate\nin ascending k order.");
        assert_eq!(file.specs[1].level, Level::Should);
        assert_eq!(file.exceptions.len(), 1);
        assert_eq!(file.exceptions[0].spec, "advisory");
    }

    #[test]
    fn basic_string_escapes_and_comments() {
        let src = "target = \"a \\\"b\\\" c\" # trailing comment\n";
        assert_eq!(parse(src).unwrap().target, "a \"b\" c");
    }

    #[test]
    fn malformed_files_error_with_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("target = \"x\"\n[[typo]]\n", 2, "unknown table"),
            ("nonsense\n", 1, "expected `key = value`"),
            ("target = \"unterminated\n", 1, "unterminated string"),
            ("[[spec]]\nid = \"a\"\nlevel = \"MUST\"\n", 1, "missing `quote`"),
            ("[[spec]]\nid = \"a\"\nquote = \"q\"\nlevel = \"MOST\"\n", 4, "unknown level"),
            ("[[spec]]\nid = \"a\"\nid = \"b\"\n", 3, "duplicate key"),
            ("[[exception]]\nspec = \"ghost\"\nreason = \"r\"\n", 1, "unknown requirement"),
            (
                "[[spec]]\nid = \"a\"\nlevel = \"MUST\"\nquote = '''\nnever closed\n",
                4,
                "unterminated '''",
            ),
            ("mystery = \"v\"\n", 1, "unknown top-level key"),
        ];
        for (src, line, needle) in cases {
            let e = parse(src).expect_err(src);
            assert_eq!(e.line, *line, "wrong line for {src:?}: {e}");
            assert!(e.message.contains(needle), "{src:?} -> {e}");
        }
    }

    #[test]
    fn duplicate_requirement_ids_are_rejected() {
        let src = "[[spec]]\nid = \"a\"\nlevel = \"MUST\"\nquote = \"q\"\n\
                   [[spec]]\nid = \"a\"\nlevel = \"MAY\"\nquote = \"r\"\n";
        let e = parse(src).expect_err("duplicate id");
        assert!(e.message.contains("duplicate requirement id"));
    }

    #[test]
    fn exception_requires_a_nonempty_reason() {
        let src = "[[spec]]\nid = \"a\"\nlevel = \"MUST\"\nquote = \"q\"\n\
                   [[exception]]\nspec = \"a\"\nreason = \"  \"\n";
        let e = parse(src).expect_err("blank reason");
        assert!(e.message.contains("empty reason"));
    }
}
