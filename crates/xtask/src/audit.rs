//! The determinism/unsafety auditor behind `cargo xtask audit`.
//!
//! The Agua pipeline's contract is *bit-reproducibility from a seed*
//! (DESIGN.md §10): given the same inputs, δ/Ω training, explanations,
//! and reports must be byte-identical at any thread count. The type
//! system cannot see the three classic ways that contract erodes —
//! hash-iteration order, wall-clock reads, and floating-point
//! reassociation — and `unsafe` soundness arguments rot silently. This
//! pass enforces all four as source-level invariants:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `unsafe-outside-allowlist` | `unsafe` appears only in `crates/nn/src/pool.rs` |
//! | `undocumented-unsafe` | every `unsafe` block/impl/fn carries a `SAFETY:` comment |
//! | `hash-order` | no `HashMap`/`HashSet` on deterministic paths without justification |
//! | `wall-clock` | no `Instant`/`SystemTime` outside the observability side |
//! | `fp-reduce` | float reductions live in `matrix.rs`'s k-ascending kernels |
//! | `stringly-app` | application dispatch on `"abr"`/`"cc"`/`"ddos"` literals lives in `crates/app` |
//! | `thread-spawn` | threads are spawned only by the pool (`pool.rs`) and its loom model |
//!
//! A site that is deliberately exempt carries an annotation **with a
//! reason** on its own line or the line above:
//!
//! ```text
//! // audit:allow(hash-order): drained into a Vec and fully sorted below
//! ```
//!
//! Test code (trailing `#[cfg(test)]` modules, `tests/`, `benches/`,
//! `examples/`) is exempt from the determinism lints but not from the
//! unsafe lints. Matching is token-level on comment/string-masked
//! source (see [`crate::lexer`]) — a word in a doc sentence never
//! fires.

use crate::emit::{print_violations, Format};
use crate::lexer::{mask, MaskedLine};
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe` (and audited for `SAFETY:` docs).
const UNSAFE_ALLOWLIST: &[&str] = &["crates/nn/src/pool.rs"];

/// Files allowed to spawn threads: the pool is the one parallelism
/// primitive (its chunking *is* the determinism contract), and the
/// loom model exercises the same protocol under the model checker.
const THREAD_SPAWN_ALLOWLIST: &[&str] = &["crates/nn/src/pool.rs", "crates/nn/src/loom.rs"];

/// The tokens that mark direct thread creation.
const THREAD_SPAWN_PATTERNS: &[&str] = &["thread::spawn", "thread::scope"];

/// Crates whose whole purpose is timing/reporting: wall-clock reads
/// there are the feature, not a leak.
const WALL_CLOCK_EXEMPT: &[&str] =
    &["crates/obs/", "crates/bench/", "crates/cli/", "crates/serve/"];

/// The deterministic numeric path: float reductions here must go
/// through the blessed kernels (or justify themselves).
const FP_REDUCE_SCOPE: &[&str] = &["crates/nn/src/", "crates/core/src/"];

/// The one home for floating-point reductions: the k-ascending matmul
/// kernels whose accumulation order is the determinism contract.
const FP_REDUCE_BLESSED: &[&str] = &["crates/nn/src/matrix.rs"];

/// The one home for application dispatch: the `agua-app` registry. A
/// quoted application name on a `match` arm anywhere else is a fork of
/// the registry that silently drifts (an unknown `--app` used to fall
/// through a `_ =>` arm into the DDoS pipeline).
const STRINGLY_APP_HOME: &[&str] = &["crates/app/"];

/// The quoted application names whose appearance on a dispatch line
/// (one carrying `=>`) marks stringly-typed application dispatch.
const STRINGLY_APP_NAMES: &[&str] = &["\"abr\"", "\"cc\"", "\"cc-debugged\"", "\"ddos\""];

/// Textual patterns that mark a float reduction. Untyped `.sum()` is
/// deliberately not matched — integer sums are order-free — so typed
/// float sums are the enforced convention on deterministic paths.
const FP_REDUCE_PATTERNS: &[&str] = &[".sum::<f32>", ".sum::<f64>", "fold(0.0", "fold(1.0"];

/// One audit finding, printed as `path:line: [lint] message`.
#[derive(Debug)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
    pub help: &'static str,
}

const HELP_UNSAFE_ALLOWLIST: &str = "workspace policy (DESIGN.md §10) confines `unsafe` to the \
     pool's audited lifetime-erased handoff; rewrite in safe Rust or extend the soundness \
     argument in crates/nn/src/pool.rs";
const HELP_UNDOCUMENTED: &str = "state the invariant that makes this sound in a `// SAFETY:` \
     comment directly above (clippy::undocumented_unsafe_blocks enforces the same rule)";
const HELP_HASH_ORDER: &str = "map/set iteration order is nondeterministic; drain into a sorted \
     structure before anything order-dependent, then annotate \
     `// audit:allow(hash-order): <why ordering cannot reach an output>`";
const HELP_WALL_CLOCK: &str = "deterministic outputs must not depend on timing; keep clock reads \
     on the observability side or annotate `// audit:allow(wall-clock): <where the reading goes>`";
const HELP_FP_REDUCE: &str = "float addition is not associative, so reduction order is part of \
     the determinism contract; use the k-ascending kernels in crates/nn/src/matrix.rs or \
     annotate `// audit:allow(fp-reduce): <why the evaluation order is fixed>`";
const HELP_STRINGLY_APP: &str = "application dispatch belongs to the agua-app registry; resolve \
     the name once with `agua_app::lookup` and go through the `Application` trait, or annotate \
     `// audit:allow(stringly-app): <why this literal is not application dispatch>`";
const HELP_THREAD_SPAWN: &str = "all parallelism goes through the agua-nn pool, whose chunking \
     and dispatch order are the determinism contract; use `pool::run_chunks`/`parallel::*` or \
     annotate `// audit:allow(thread-spawn): <why this thread cannot affect outputs>`";

/// What an `unsafe` token introduces, which decides whether it needs a
/// `SAFETY:` comment.
enum UnsafeKind {
    /// `unsafe {`, `unsafe impl`, `unsafe fn name` — needs `SAFETY:`.
    NeedsDoc,
    /// `unsafe fn(` — a function-pointer *type*; naming it is safe.
    TypeMention,
}

/// Audits one file's source. `rel_path` is `/`-separated and relative
/// to the workspace root (it selects per-path lint scopes).
pub fn audit_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let lines = mask(source);
    let raw: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let foreign_tests = ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|d| rel_path.contains(d) || rel_path.starts_with(&d[1..]));
    let unsafe_allowed = UNSAFE_ALLOWLIST.contains(&rel_path);
    let test_mod_start = find_test_mod_start(&lines);

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;

        // Unsafe lints apply to every line, test code included.
        if let Some(kind) = classify_unsafe(&line.code) {
            if !unsafe_allowed {
                out.push(Violation {
                    path: rel_path.to_string(),
                    line: lineno,
                    lint: "unsafe-outside-allowlist",
                    message: "`unsafe` outside the audited allowlist (crates/nn/src/pool.rs)"
                        .to_string(),
                    help: HELP_UNSAFE_ALLOWLIST,
                });
            } else if matches!(kind, UnsafeKind::NeedsDoc) && !has_safety_comment(&lines, idx) {
                out.push(Violation {
                    path: rel_path.to_string(),
                    line: lineno,
                    lint: "undocumented-unsafe",
                    message: "`unsafe` without a `// SAFETY:` comment directly above".to_string(),
                    help: HELP_UNDOCUMENTED,
                });
            }
        }

        // Determinism lints skip test code, and skip `use` lines — an
        // import is not a usage site, and flagging both would demand
        // two annotations per justified use.
        if foreign_tests || idx >= test_mod_start || line.code.trim_start().starts_with("use ") {
            continue;
        }

        for token in ["HashMap", "HashSet"] {
            if has_word(&line.code, token) && !is_allowed(&lines, idx, "hash-order") {
                out.push(Violation {
                    path: rel_path.to_string(),
                    line: lineno,
                    lint: "hash-order",
                    message: format!("`{token}` used in a deterministic path"),
                    help: HELP_HASH_ORDER,
                });
                break;
            }
        }

        if !WALL_CLOCK_EXEMPT.iter().any(|p| rel_path.starts_with(p)) {
            for token in ["Instant", "SystemTime"] {
                if has_word(&line.code, token) && !is_allowed(&lines, idx, "wall-clock") {
                    out.push(Violation {
                        path: rel_path.to_string(),
                        line: lineno,
                        lint: "wall-clock",
                        message: format!("wall-clock read (`{token}`) in a deterministic path"),
                        help: HELP_WALL_CLOCK,
                    });
                    break;
                }
            }
        }

        // String bodies are blanked in the masked view, so the literal
        // itself is matched against the raw line; the masked view
        // supplies the `=>` that makes it a dispatch site.
        if !STRINGLY_APP_HOME.iter().any(|p| rel_path.starts_with(p))
            && line.code.contains("=>")
            && !is_allowed(&lines, idx, "stringly-app")
        {
            for name in STRINGLY_APP_NAMES {
                if raw.get(idx).is_some_and(|r| raw_outside_comment(r, &line.comment, name)) {
                    out.push(Violation {
                        path: rel_path.to_string(),
                        line: lineno,
                        lint: "stringly-app",
                        message: format!(
                            "application name literal {name} dispatched outside the registry"
                        ),
                        help: HELP_STRINGLY_APP,
                    });
                    break;
                }
            }
        }

        if !THREAD_SPAWN_ALLOWLIST.contains(&rel_path) {
            for pat in THREAD_SPAWN_PATTERNS {
                if has_path_token(&line.code, pat) && !is_allowed(&lines, idx, "thread-spawn") {
                    out.push(Violation {
                        path: rel_path.to_string(),
                        line: lineno,
                        lint: "thread-spawn",
                        message: format!("direct thread creation (`{pat}`) outside the pool"),
                        help: HELP_THREAD_SPAWN,
                    });
                    break;
                }
            }
        }

        let fp_in_scope = FP_REDUCE_SCOPE.iter().any(|p| rel_path.starts_with(p))
            && !FP_REDUCE_BLESSED.contains(&rel_path);
        if fp_in_scope {
            for pat in FP_REDUCE_PATTERNS {
                if line.code.contains(pat) && !is_allowed(&lines, idx, "fp-reduce") {
                    out.push(Violation {
                        path: rel_path.to_string(),
                        line: lineno,
                        lint: "fp-reduce",
                        message: format!(
                            "floating-point reduction (`{pat}`) outside the blessed kernels"
                        ),
                        help: HELP_FP_REDUCE,
                    });
                    break;
                }
            }
        }
    }
    out
}

/// Line index where the trailing `#[cfg(test)] mod …` starts, or
/// `lines.len()` when there is none. Only a `#[cfg(test)]` whose next
/// code line (skipping comments and further attributes) opens a `mod`
/// counts: a mid-file `#[cfg(test)]` on a helper function or a
/// `thread_local!` must not exempt the production code below it.
fn find_test_mod_start(lines: &[MaskedLine]) -> usize {
    // `#[cfg(all(test, …))]` guards (e.g. `not(loom)` so a loom build
    // swaps in its model instead) gate test modules just as hard as a
    // bare `#[cfg(test)]`.
    let is_test_cfg = |code: &str| {
        let t = code.trim();
        t == "#[cfg(test)]" || (t.starts_with("#[cfg(all(test,") && t.ends_with(")]"))
    };
    'outer: for (i, line) in lines.iter().enumerate() {
        if !is_test_cfg(&line.code) {
            continue;
        }
        for next in &lines[i + 1..] {
            let code = next.code.trim();
            if code.is_empty() || code.starts_with('#') {
                continue; // comment-only line or another attribute
            }
            if code.starts_with("mod ") || code.starts_with("pub mod ") {
                return i;
            }
            continue 'outer;
        }
    }
    lines.len()
}

/// First `unsafe` token on the line, classified. `unsafe_code` (the
/// lint name in attributes) is a different identifier and never
/// matches.
fn classify_unsafe(code: &str) -> Option<UnsafeKind> {
    let pos = find_word(code, "unsafe")?;
    let rest = code[pos + "unsafe".len()..].trim_start();
    if let Some(after_fn) = rest.strip_prefix("fn") {
        if after_fn.trim_start().starts_with('(') {
            return Some(UnsafeKind::TypeMention);
        }
    }
    Some(UnsafeKind::NeedsDoc)
}

/// Byte offset of `word` in `code` with identifier boundaries on both
/// sides, or `None`.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(at) = code[from..].find(word) {
        let start = from + at;
        let end = start + word.len();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(code[..start].chars().next_back()) && boundary(code[end..].chars().next()) {
            return Some(start);
        }
        from = end;
    }
    None
}

fn has_word(code: &str, word: &str) -> bool {
    find_word(code, word).is_some()
}

/// Does the path-shaped token (e.g. `thread::spawn`) appear with
/// identifier boundaries on both ends? `find_word` only handles single
/// identifiers, so the `::`-joined form gets its own check.
fn has_path_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let start = from + at;
        let end = start + token.len();
        let boundary = |c: Option<char>| !c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary(code[..start].chars().next_back()) && boundary(code[end..].chars().next()) {
            return true;
        }
        from = end;
    }
    false
}

/// Does `needle` appear in the raw line at a position that is *not*
/// comment text? String bodies are blanked in both masked views, so a
/// quoted literal in code shows blanks in the comment view while the
/// same text in a comment shows there verbatim. Comparison is char-wise
/// because the masked views are column-aligned per *character*.
fn raw_outside_comment(raw: &str, comment: &str, needle: &str) -> bool {
    let raw: Vec<char> = raw.chars().collect();
    let com: Vec<char> = comment.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    if raw.len() < pat.len() {
        return false;
    }
    'starts: for start in 0..=raw.len() - pat.len() {
        for (k, &pc) in pat.iter().enumerate() {
            if raw[start + k] != pc {
                continue 'starts;
            }
        }
        let in_comment =
            com.get(start..start + pat.len()).is_some_and(|w| w.iter().any(|&c| c != ' '));
        if !in_comment {
            return true;
        }
    }
    false
}

/// Is line `idx` covered by `// audit:allow(<lint>): <reason>` — as a
/// trailing comment, on comment lines directly above, or above the
/// start of the statement when the flagged line is a continuation? (A
/// code line not ending in `;`/`{`/`}` continues on the next line, so
/// the scan keeps walking up through it.)
fn is_allowed(lines: &[MaskedLine], idx: usize, lint: &str) -> bool {
    if annotation_with_reason(&lines[idx].comment, lint) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        let prev = &lines[i - 1];
        let continuation =
            !matches!(prev.code.trim_end().chars().next_back(), Some(';' | '{' | '}') | None);
        if !is_comment_only(prev) && !continuation {
            return false;
        }
        i -= 1;
        if annotation_with_reason(&lines[i].comment, lint) {
            return true;
        }
    }
    false
}

/// `audit:allow(<lint>)` followed by `:` and a non-empty reason. A
/// reason-less annotation deliberately does not count.
fn annotation_with_reason(comment: &str, lint: &str) -> bool {
    let needle = format!("audit:allow({lint})");
    match comment.find(&needle) {
        None => false,
        Some(at) => {
            let rest = comment[at + needle.len()..].trim_start();
            rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty())
        }
    }
}

/// Does the contiguous comment/attribute run above line `idx` contain
/// `SAFETY:`? (Same-line trailing comments count too.)
fn has_safety_comment(lines: &[MaskedLine], idx: usize) -> bool {
    if lines[idx].comment.contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        let prev = &lines[i - 1];
        if is_comment_only(prev) || prev.code.trim_start().starts_with('#') {
            if prev.comment.contains("SAFETY:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

fn is_comment_only(line: &MaskedLine) -> bool {
    line.code.trim().is_empty() && !line.comment.trim().is_empty()
}

/// Every `.rs` file under `<root>/crates` and `<root>/src`, sorted for
/// deterministic diagnostics.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        walk(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    // Sort directory entries: diagnostics order must not depend on
    // filesystem enumeration order.
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs the audit over the workspace at `root`, printing findings in
/// `format`. Returns `true` when clean.
pub fn run(root: &Path, format: Format) -> bool {
    let files = collect_rs_files(root);
    if files.is_empty() {
        eprintln!("audit: no Rust sources under {} — wrong --root?", root.display());
        return false;
    }
    let mut violations = Vec::new();
    for file in &files {
        let Ok(source) = std::fs::read_to_string(file) else {
            eprintln!("audit: unreadable file {}", file.display());
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        violations.extend(audit_source(&rel, &source));
    }
    print_violations(&violations, format);
    if format == Format::Human {
        if violations.is_empty() {
            println!("audit: OK — {} files clean", files.len());
        } else {
            println!("audit: {} violation(s) across {} files", violations.len(), files.len());
        }
    }
    violations.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        audit_source(path, src).into_iter().map(|v| (v.lint, v.line)).collect()
    }

    #[test]
    fn seeded_unsafe_outside_allowlist_is_flagged() {
        let src = "pub fn f(p: *mut f32) {\n    unsafe { *p = 0.0 };\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", src), vec![("unsafe-outside-allowlist", 2)]);
    }

    #[test]
    fn allowlisted_unsafe_needs_a_safety_comment() {
        let bad = "fn f(p: *mut f32) {\n    unsafe { *p = 0.0 };\n}\n";
        assert_eq!(lints("crates/nn/src/pool.rs", bad), vec![("undocumented-unsafe", 2)]);
        let good = "fn f(p: *mut f32) {\n    // SAFETY: p targets a live, exclusively owned\n    // allocation per the latch protocol.\n    unsafe { *p = 0.0 };\n}\n";
        assert_eq!(lints("crates/nn/src/pool.rs", good), vec![]);
    }

    #[test]
    fn unsafe_fn_pointer_types_are_not_declarations() {
        let src = "struct Task {\n    run: unsafe fn(*const ()),\n}\n";
        assert_eq!(lints("crates/nn/src/pool.rs", src), vec![]);
        // But an actual unsafe fn declaration needs documentation.
        let decl = "unsafe fn call(p: *const ()) {}\n";
        assert_eq!(lints("crates/nn/src/pool.rs", decl), vec![("undocumented-unsafe", 1)]);
    }

    #[test]
    fn unsafe_code_attribute_identifier_is_not_the_keyword() {
        let src = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(lints("crates/core/src/lib.rs", src), vec![]);
    }

    #[test]
    fn hash_order_fires_and_annotation_with_reason_suppresses() {
        let bad = "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        assert_eq!(lints("crates/core/src/congen.rs", bad), vec![("hash-order", 3)]);
        let good = "fn f() {\n    // audit:allow(hash-order): drained into a sorted Vec below\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        assert_eq!(lints("crates/core/src/congen.rs", good), vec![]);
        let reasonless = "fn f() {\n    // audit:allow(hash-order)\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        assert_eq!(lints("crates/core/src/congen.rs", reasonless), vec![("hash-order", 3)]);
    }

    #[test]
    fn wall_clock_is_scoped_to_deterministic_crates() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", src), vec![("wall-clock", 2)]);
        assert_eq!(lints("crates/obs/src/subscriber.rs", src), vec![]);
        // Word boundaries: "Instantaneous" in code is not `Instant`.
        let prose = "fn f() {\n    let Instantaneous = 1;\n}\n";
        assert_eq!(lints("crates/core/src/cc.rs", prose), vec![]);
    }

    #[test]
    fn fp_reduce_is_blessed_in_matrix_rs_only() {
        let src = "fn f(v: &[f32]) -> f32 {\n    v.iter().sum::<f32>()\n}\n";
        assert_eq!(lints("crates/nn/src/layer.rs", src), vec![("fp-reduce", 2)]);
        assert_eq!(lints("crates/nn/src/matrix.rs", src), vec![]);
        // Outside the deterministic numeric path the lint does not apply.
        assert_eq!(lints("crates/abr-env/src/trace.rs", src), vec![]);
        let fold = "fn f(v: &[f32]) -> f32 {\n    v.iter().cloned().fold(0.0f32, f32::max)\n}\n";
        assert_eq!(lints("crates/core/src/labeling.rs", fold), vec![("fp-reduce", 2)]);
    }

    #[test]
    fn annotation_above_a_multiline_statement_covers_its_continuations() {
        let src = "fn f(params: &[Vec<f32>]) -> f32 {\n    // audit:allow(fp-reduce): sequential, fixed iteration order\n    let l2: f32 =\n        params.iter().map(|p| p.iter().map(|v| v * v).sum::<f32>()).sum::<f32>();\n    l2\n}\n";
        assert_eq!(lints("crates/nn/src/optim.rs", src), vec![]);
        // A statement boundary (`;`) above stops the scan: the
        // annotation must belong to the flagged statement.
        let apart = "fn f(v: &[f32]) -> f32 {\n    // audit:allow(fp-reduce): only covers the next statement\n    let a = 1.0f32;\n    v.iter().sum::<f32>()\n}\n";
        assert_eq!(lints("crates/nn/src/optim.rs", apart), vec![("fp-reduce", 4)]);
    }

    #[test]
    fn trailing_test_modules_are_exempt_from_determinism_lints() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        let m = std::collections::HashMap::<u32, u32>::new();\n        let t = std::time::Instant::now();\n        let s = [0.0f32].iter().sum::<f32>();\n        let _ = (m, t, s);\n    }\n}\n";
        assert_eq!(lints("crates/nn/src/layer.rs", src), vec![]);
        // ... but not from the unsafe lints.
        let unsafe_in_tests = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(p: *mut f32) {\n        unsafe { *p = 0.0 };\n    }\n}\n";
        assert_eq!(
            lints("crates/nn/src/layer.rs", unsafe_in_tests),
            vec![("unsafe-outside-allowlist", 5)]
        );
    }

    #[test]
    fn stringly_app_dispatch_is_confined_to_the_registry_crate() {
        let bad = "fn n(app: &str) -> usize {\n    match app {\n        \"abr\" => 10,\n        \"cc\" => 3,\n        _ => 2,\n    }\n}\n";
        assert_eq!(
            lints("crates/bench/src/report.rs", bad),
            vec![("stringly-app", 3), ("stringly-app", 4)]
        );
        // The registry crate is the one home for this dispatch.
        assert_eq!(lints("crates/app/src/application.rs", bad), vec![]);
        // Test code is exempt, like the other determinism lints.
        let in_tests = format!("pub fn f() {{}}\n#[cfg(test)]\nmod tests {{\n{bad}}}\n");
        assert_eq!(lints("crates/bench/src/report.rs", &in_tests), vec![]);
    }

    #[test]
    fn stringly_app_annotation_and_non_dispatch_lines_are_clean() {
        let allowed = "fn n(app: &str) -> usize {\n    match app {\n        // audit:allow(stringly-app): golden-file fixture name, not dispatch\n        \"ddos\" => 2,\n        _ => 0,\n    }\n}\n";
        assert_eq!(lints("crates/bench/src/report.rs", allowed), vec![]);
        // A quoted name without `=>` is data, not dispatch…
        let data = "fn f() -> &'static str {\n    \"abr\"\n}\n";
        assert_eq!(lints("crates/bench/src/report.rs", data), vec![]);
        // …a comment mentioning a name next to an unrelated arm is prose…
        let prose = "fn f(x: u32) -> u32 {\n    match x {\n        1 => 2, // the \"abr\" pipeline\n        _ => 0,\n    }\n}\n";
        assert_eq!(lints("crates/bench/src/report.rs", prose), vec![]);
        // …and longer names do not contain the short ones (`\"cc\"` is
        // not inside `\"cc-debugged\"`), but both are registered names.
        let debugged = "fn f(app: &str) -> u32 {\n    match app {\n        \"cc-debugged\" => 1,\n        _ => 0,\n    }\n}\n";
        assert_eq!(lints("crates/bench/src/report.rs", debugged), vec![("stringly-app", 3)]);
    }

    #[test]
    fn mid_file_cfg_test_attributes_do_not_exempt_later_code() {
        // A `#[cfg(test)]` on a helper (not a trailing test module)
        // must not turn the rest of the file into test code.
        let src = "fn detect() -> usize {\n    #[cfg(test)]\n    if true {\n        return 1;\n    }\n    4\n}\nfn f() {\n    std::thread::spawn(|| {});\n}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        std::thread::spawn(|| {});\n    }\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", src), vec![("thread-spawn", 9)]);
    }

    #[test]
    fn thread_spawn_is_confined_to_the_pool() {
        let spawn = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", spawn), vec![("thread-spawn", 2)]);
        let scope = "fn f() {\n    std::thread::scope(|s| { let _ = s; });\n}\n";
        assert_eq!(lints("crates/nn/src/parallel.rs", scope), vec![("thread-spawn", 2)]);
        // The pool and its loom model are the allowlist.
        assert_eq!(lints("crates/nn/src/pool.rs", spawn), vec![]);
        assert_eq!(lints("crates/nn/src/loom.rs", scope), vec![]);
        // Test code spawns threads legitimately (stress tests, etc.).
        let in_tests = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        std::thread::spawn(|| {});\n    }\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", in_tests), vec![]);
        // Loom-guarded test modules are test code too.
        let loom_gated = "pub fn f() {}\n#[cfg(all(test, not(loom)))]\nmod tests {\n    fn g() {\n        std::thread::spawn(|| {});\n    }\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", loom_gated), vec![]);
        // The escape hatch needs a reason, like every other lint.
        let allowed = "fn f() {\n    // audit:allow(thread-spawn): watcher thread only reads, never writes outputs\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", allowed), vec![]);
        // An identifier that merely contains the token does not fire.
        let ident = "fn f() {\n    let thread_spawned = my_thread::spawner();\n}\n";
        assert_eq!(lints("crates/core/src/explain.rs", ident), vec![]);
    }

    #[test]
    fn findings_render_in_both_formats() {
        let src =
            "fn f() {\n    let m: std::collections::HashMap<u32, u32> = Default::default();\n}\n";
        let violations = audit_source("crates/core/src/congen.rs", src);
        assert_eq!(violations.len(), 1);
        let json = crate::emit::violations_json(&violations);
        assert!(json.contains("\"path\": \"crates/core/src/congen.rs\""));
        assert!(json.contains("\"lint\": \"hash-order\""));
        assert!(json.contains("\"line\": 2"));
        // Human rendering is the `path:line: [lint]` form the tests
        // and editors grep for.
        let human = format!(
            "{}:{}: [{}] {}",
            violations[0].path, violations[0].line, violations[0].lint, violations[0].message
        );
        assert!(human.starts_with("crates/core/src/congen.rs:2: [hash-order]"));
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap, Instant::now(), unsafe, .sum::<f32>() in prose\nfn f() {\n    let s = \"HashMap unsafe Instant .sum::<f32>()\";\n    let _ = s;\n}\n";
        assert_eq!(lints("crates/nn/src/layer.rs", src), vec![]);
    }

    #[test]
    fn integration_tests_dirs_skip_determinism_but_not_unsafe() {
        let src = "fn g() {\n    let t = std::time::Instant::now();\n    let _ = t;\n}\n";
        assert_eq!(lints("crates/nn/tests/loom_pool.rs", src), vec![]);
        let with_unsafe = "fn g(p: *mut f32) {\n    unsafe { *p = 0.0 };\n}\n";
        assert_eq!(
            lints("crates/nn/tests/loom_pool.rs", with_unsafe),
            vec![("unsafe-outside-allowlist", 2)]
        );
    }

    /// The real workspace must be clean: this is the audit gate wired
    /// into tier-1 `cargo test`, independent of `ci.sh`.
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        if !root.join("crates").is_dir() {
            eprintln!("workspace root not found; skipping");
            return;
        }
        let mut violations = Vec::new();
        for file in collect_rs_files(&root) {
            let source = std::fs::read_to_string(&file).expect("readable source");
            let rel = file
                .strip_prefix(&root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace(std::path::MAIN_SEPARATOR, "/");
            violations.extend(audit_source(&rel, &source));
        }
        let rendered: Vec<String> = violations
            .iter()
            .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message))
            .collect();
        assert!(rendered.is_empty(), "workspace audit violations:\n{}", rendered.join("\n"));
    }
}
