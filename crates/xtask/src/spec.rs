//! `cargo xtask spec` — duvet-style requirement tracing.
//!
//! The audit pass enforces *how* code is written; this pass enforces
//! *that the reproduction still implements the paper*. Normative
//! requirements — Agua's equations, the determinism contract, the
//! quantization semantics, the pool protocol — live in `specs/*.toml`
//! (see [`crate::toml`]), and the implementing sites carry anchor
//! annotations in ordinary comments:
//!
//! ```text
//! //= spec: specs/determinism.toml#k-ascending
//! //# reductions MUST accumulate in ascending k order
//! ```
//!
//! An anchor cites one requirement and quotes a fragment of it; the
//! checker re-reads the quote on every run, so when the requirement
//! text changes the anchor goes *stale* and CI fails until someone
//! re-reads the code and re-quotes. A site that deliberately deviates
//! records an exception instead:
//!
//! ```text
//! //= spec: specs/determinism.toml#no-fma
//! //= type: exception
//! //= reason: the reference kernel is scalar; no lanes to fuse
//! ```
//!
//! The checker fails when a MUST-level requirement has no anchor and
//! no exception, when an anchor cites a requirement that does not
//! exist, or when an anchor's quote no longer matches the requirement
//! text (whitespace/wrap-normalized comparison). Anchors are scanned
//! on the lexer's comment view, so anchor-shaped text inside string
//! literals never counts. Every run also writes
//! `results/spec_compliance.json` — per-spec coverage, the anchor
//! list, and recorded exceptions — for the report tooling.

use crate::audit::{collect_rs_files, Violation};
use crate::emit::{json_string, print_violations, Format};
use crate::lexer::mask;
use crate::toml::{self, Level, SpecFile};
use std::path::Path;

const HELP_MALFORMED_SPEC: &str = "fix the requirement file; the grammar is the duvet-style \
     subset documented in DESIGN.md §12 (target, [[spec]] id/level/quote, [[exception]] \
     spec/reason)";
const HELP_MALFORMED_ANCHOR: &str = "anchors are `//= spec: specs/<file>.toml#<id>` followed by \
     `//# <quoted requirement text>`, or `//= type: exception` with `//= reason: <why>` \
     (DESIGN.md §12)";
const HELP_DANGLING: &str = "the citation names a spec file or requirement id that does not \
     exist; fix the citation, or add the requirement to the spec file";
const HELP_STALE: &str = "the `//# ` quote is not a fragment of the requirement's text any more \
     (comparison is whitespace- and wrap-insensitive); re-read the code against the new \
     requirement, then re-quote it";
const HELP_UNANCHORED: &str = "every MUST requirement needs a `//= spec:` anchor at its \
     implementing site, or a recorded exception (`[[exception]]` in the spec file or \
     `//= type: exception` in code) explaining why not";

/// How an anchor relates to its requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnchorKind {
    /// This code implements the requirement (quote re-checked).
    Citation,
    /// This code deliberately deviates, with a reason.
    Exception,
}

impl AnchorKind {
    fn as_str(self) -> &'static str {
        match self {
            AnchorKind::Citation => "citation",
            AnchorKind::Exception => "exception",
        }
    }
}

/// One `//= spec:` annotation found in source.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// `/`-separated path relative to the workspace root.
    pub path: String,
    /// 1-based line of the `//= spec:` line.
    pub line: usize,
    /// The cited file, e.g. `specs/determinism.toml`.
    pub spec_file: String,
    /// The cited requirement id.
    pub id: String,
    pub kind: AnchorKind,
    /// Exception reason (`//= reason:` lines, joined).
    pub reason: Option<String>,
    /// Quoted requirement fragment (`//# ` lines, joined).
    pub quote: String,
}

/// Scans one file's comment view for anchors. Malformed anchors are
/// reported as violations rather than silently skipped: a typo in an
/// annotation must not demote a requirement to "unanchored" quietly.
pub fn scan_anchors(rel_path: &str, source: &str) -> (Vec<Anchor>, Vec<Violation>) {
    let lines = mask(source);
    let mut anchors = Vec::new();
    let mut violations = Vec::new();
    let mut malformed = |line: usize, message: String| {
        violations.push(Violation {
            path: rel_path.to_string(),
            line,
            lint: "malformed-anchor",
            message,
            help: HELP_MALFORMED_ANCHOR,
        });
    };

    let mut i = 0;
    while i < lines.len() {
        let text = lines[i].comment.trim();
        let Some(rest) = text.strip_prefix("//=") else {
            if text.starts_with("//#") {
                malformed(i + 1, "`//# ` quote line outside an anchor block".to_string());
            }
            i += 1;
            continue;
        };
        let Some(citation) = rest.trim_start().strip_prefix("spec:") else {
            malformed(i + 1, format!("`//=` line does not start an anchor: {text:?}"));
            i += 1;
            continue;
        };
        let citation = citation.trim();
        let start = i + 1;
        let Some((spec_file, id)) = citation
            .split_once('#')
            .filter(|(f, id)| f.starts_with("specs/") && f.ends_with(".toml") && !id.is_empty())
        else {
            malformed(start, format!("citation {citation:?} is not `specs/<file>.toml#<id>`"));
            i += 1;
            continue;
        };

        // Consume the rest of the block: type/reason directives and
        // quote lines, in any order, ending at the first other line.
        let mut kind = AnchorKind::Citation;
        let mut reason_lines: Vec<String> = Vec::new();
        let mut quote_lines: Vec<String> = Vec::new();
        let mut ok = true;
        i += 1;
        while i < lines.len() {
            let text = lines[i].comment.trim();
            if let Some(directive) = text.strip_prefix("//=") {
                let directive = directive.trim_start();
                if let Some(t) = directive.strip_prefix("type:") {
                    match t.trim() {
                        "exception" => kind = AnchorKind::Exception,
                        other => {
                            malformed(i + 1, format!("unknown anchor type {other:?}"));
                            ok = false;
                        }
                    }
                } else if let Some(r) = directive.strip_prefix("reason:") {
                    reason_lines.push(r.trim().to_string());
                } else if directive.trim_start().starts_with("spec:") {
                    break; // next anchor starts here
                } else {
                    malformed(i + 1, format!("unknown anchor directive {text:?}"));
                    ok = false;
                }
            } else if let Some(q) = text.strip_prefix("//#") {
                quote_lines.push(q.trim().to_string());
            } else {
                break;
            }
            i += 1;
        }

        let reason = if reason_lines.is_empty() { None } else { Some(reason_lines.join(" ")) };
        match kind {
            AnchorKind::Citation if quote_lines.iter().all(|q| q.is_empty()) => {
                malformed(start, format!("citation of {citation:?} quotes no requirement text"));
                ok = false;
            }
            AnchorKind::Exception if reason.is_none() => {
                malformed(start, format!("exception for {citation:?} has no `//= reason:`"));
                ok = false;
            }
            _ => {}
        }
        if ok {
            anchors.push(Anchor {
                path: rel_path.to_string(),
                line: start,
                spec_file: spec_file.to_string(),
                id: id.to_string(),
                kind,
                reason,
                quote: quote_lines.join("\n"),
            });
        }
    }
    (anchors, violations)
}

/// Collapses all whitespace runs to single spaces so a re-wrapped or
/// re-indented quote still matches its requirement.
pub fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Does the (normalized) anchor quote appear in the (normalized)
/// requirement text?
pub fn quote_matches(anchor_quote: &str, requirement: &str) -> bool {
    normalize(requirement).contains(&normalize(anchor_quote))
}

/// One requirement's resolved status in the report.
#[derive(Debug, Clone)]
pub struct EntryReport {
    pub id: String,
    pub level: Level,
    /// `(path, line, kind)` of every resolved anchor.
    pub anchors: Vec<(String, usize, AnchorKind)>,
    /// Exception reasons, from the spec file and from code anchors.
    pub exceptions: Vec<String>,
}

/// One spec file's section of the report.
#[derive(Debug, Clone)]
pub struct SpecReport {
    pub file: String,
    pub target: String,
    pub entries: Vec<EntryReport>,
}

impl SpecReport {
    fn must(&self) -> usize {
        self.entries.iter().filter(|e| e.level == Level::Must).count()
    }
    fn must_anchored(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                e.level == Level::Must && (!e.anchors.is_empty() || !e.exceptions.is_empty())
            })
            .count()
    }
}

/// The full compliance report, rendered to `results/spec_compliance.json`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub specs: Vec<SpecReport>,
}

impl Report {
    pub fn total_requirements(&self) -> usize {
        self.specs.iter().map(|s| s.entries.len()).sum()
    }
    pub fn total_must(&self) -> usize {
        self.specs.iter().map(|s| s.must()).sum()
    }
    pub fn total_must_anchored(&self) -> usize {
        self.specs.iter().map(|s| s.must_anchored()).sum()
    }
}

fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        100.0
    } else {
        (part as f64 / whole as f64) * 100.0
    }
}

/// Runs the whole check over the workspace at `root`: parse every
/// `specs/*.toml`, scan every Rust source for anchors, resolve, and
/// compute coverage. Pure with respect to output files — the caller
/// decides whether to write the report.
pub fn check(root: &Path) -> (Report, Vec<Violation>) {
    let mut violations = Vec::new();

    // Load the requirement corpus, sorted for deterministic output.
    let spec_dir = root.join("specs");
    let mut paths: Vec<_> = std::fs::read_dir(&spec_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
        .collect();
    paths.sort();
    let mut specs: Vec<(String, SpecFile)> = Vec::new();
    for path in &paths {
        let rel = format!("specs/{}", path.file_name().unwrap_or_default().to_string_lossy());
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                violations.push(Violation {
                    path: rel,
                    line: 0,
                    lint: "malformed-spec",
                    message: format!("unreadable spec file: {e}"),
                    help: HELP_MALFORMED_SPEC,
                });
                continue;
            }
        };
        match toml::parse(&source) {
            Ok(file) => specs.push((rel, file)),
            Err(e) => violations.push(Violation {
                path: rel,
                line: e.line,
                lint: "malformed-spec",
                message: e.message,
                help: HELP_MALFORMED_SPEC,
            }),
        }
    }

    // Scan every Rust source for anchors.
    let mut anchors: Vec<Anchor> = Vec::new();
    for file in collect_rs_files(root) {
        let Ok(source) = std::fs::read_to_string(&file) else { continue };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let (found, bad) = scan_anchors(&rel, &source);
        anchors.extend(found);
        violations.extend(bad);
    }

    // Resolve each anchor against the corpus.
    let mut resolved: Vec<&Anchor> = Vec::new();
    for anchor in &anchors {
        let Some((_, spec)) = specs.iter().find(|(rel, _)| *rel == anchor.spec_file) else {
            violations.push(Violation {
                path: anchor.path.clone(),
                line: anchor.line,
                lint: "dangling-anchor",
                message: format!("citation of nonexistent spec file {:?}", anchor.spec_file),
                help: HELP_DANGLING,
            });
            continue;
        };
        let Some(req) = spec.specs.iter().find(|r| r.id == anchor.id) else {
            violations.push(Violation {
                path: anchor.path.clone(),
                line: anchor.line,
                lint: "dangling-anchor",
                message: format!(
                    "citation of nonexistent requirement {:?} in {}",
                    anchor.id, anchor.spec_file
                ),
                help: HELP_DANGLING,
            });
            continue;
        };
        if anchor.kind == AnchorKind::Citation && !quote_matches(&anchor.quote, &req.quote) {
            violations.push(Violation {
                path: anchor.path.clone(),
                line: anchor.line,
                lint: "stale-quote",
                message: format!(
                    "quoted text no longer matches {}#{}",
                    anchor.spec_file, anchor.id
                ),
                help: HELP_STALE,
            });
            continue;
        }
        resolved.push(anchor);
    }

    // Coverage: every MUST needs an anchor or an exception.
    let mut report = Report::default();
    for (rel, spec) in &specs {
        let mut entries = Vec::new();
        for req in &spec.specs {
            let matching: Vec<&&Anchor> =
                resolved.iter().filter(|a| a.spec_file == *rel && a.id == req.id).collect();
            let mut exceptions: Vec<String> = spec
                .exceptions
                .iter()
                .filter(|e| e.spec == req.id)
                .map(|e| e.reason.clone())
                .collect();
            exceptions.extend(matching.iter().filter_map(|a| a.reason.clone()));
            let anchor_refs: Vec<(String, usize, AnchorKind)> =
                matching.iter().map(|a| (a.path.clone(), a.line, a.kind)).collect();
            if req.level == Level::Must && anchor_refs.is_empty() && exceptions.is_empty() {
                violations.push(Violation {
                    path: rel.clone(),
                    line: req.line,
                    lint: "unanchored-must",
                    message: format!(
                        "MUST requirement {:?} has no anchor and no exception",
                        req.id
                    ),
                    help: HELP_UNANCHORED,
                });
            }
            entries.push(EntryReport {
                id: req.id.clone(),
                level: req.level,
                anchors: anchor_refs,
                exceptions,
            });
        }
        report.specs.push(SpecReport { file: rel.clone(), target: spec.target.clone(), entries });
    }
    (report, violations)
}

/// Renders the compliance report as pretty JSON (hand-rolled; stable
/// key and array order so the file diffs cleanly).
pub fn render_report(report: &Report, clean: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"agua-spec-compliance-v1\",\n");
    out.push_str(&format!("  \"clean\": {clean},\n"));
    out.push_str(&format!("  \"total_requirements\": {},\n", report.total_requirements()));
    out.push_str(&format!("  \"total_must\": {},\n", report.total_must()));
    out.push_str(&format!("  \"total_must_anchored\": {},\n", report.total_must_anchored()));
    out.push_str(&format!(
        "  \"must_coverage_pct\": {:.1},\n",
        pct(report.total_must_anchored(), report.total_must())
    ));
    out.push_str("  \"specs\": [");
    for (n, spec) in report.specs.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"file\": {},\n", json_string(&spec.file)));
        out.push_str(&format!("      \"target\": {},\n", json_string(&spec.target)));
        out.push_str(&format!("      \"requirements\": {},\n", spec.entries.len()));
        out.push_str(&format!("      \"must\": {},\n", spec.must()));
        out.push_str(&format!("      \"must_anchored\": {},\n", spec.must_anchored()));
        out.push_str(&format!(
            "      \"must_coverage_pct\": {:.1},\n",
            pct(spec.must_anchored(), spec.must())
        ));
        out.push_str("      \"entries\": [");
        for (m, entry) in spec.entries.iter().enumerate() {
            if m > 0 {
                out.push(',');
            }
            out.push_str("\n        {");
            out.push_str(&format!("\"id\": {}, ", json_string(&entry.id)));
            out.push_str(&format!("\"level\": {}, ", json_string(entry.level.as_str())));
            out.push_str("\"anchors\": [");
            for (k, (path, line, kind)) in entry.anchors.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"path\": {}, \"line\": {line}, \"kind\": {}}}",
                    json_string(path),
                    json_string(kind.as_str())
                ));
            }
            out.push_str("], \"exceptions\": [");
            for (k, reason) in entry.exceptions.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(reason));
            }
            out.push_str("]}");
        }
        if !spec.entries.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    if !report.specs.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// CLI entry point: check, write `results/spec_compliance.json`, print
/// findings. Returns `true` when compliant.
pub fn run(root: &Path, format: Format) -> bool {
    if !root.join("specs").is_dir() {
        eprintln!("spec: no specs/ directory under {} — wrong --root?", root.display());
        return false;
    }
    let (report, violations) = check(root);
    let clean = violations.is_empty();

    let results = root.join("results");
    let out_path = results.join("spec_compliance.json");
    if let Err(e) = std::fs::create_dir_all(&results)
        .and_then(|_| std::fs::write(&out_path, render_report(&report, clean)))
    {
        eprintln!("spec: cannot write {}: {e}", out_path.display());
        return false;
    }

    print_violations(&violations, format);
    if format == Format::Human {
        if clean {
            println!(
                "spec: OK — {} requirements ({} MUST, {:.1}% anchored) across {} spec files",
                report.total_requirements(),
                report.total_must(),
                pct(report.total_must_anchored(), report.total_must()),
                report.specs.len(),
            );
        } else {
            println!("spec: {} violation(s)", violations.len());
        }
        println!("spec: report written to {}", out_path.display());
    }
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::fs;
    use std::path::PathBuf;

    /// A minimal on-disk workspace for exercising the real checker.
    fn fixture(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join("agua-spec-fixtures").join(name);
        let _ = fs::remove_dir_all(&root);
        for (rel, content) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, content).unwrap();
        }
        root
    }

    fn lints(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.lint).collect()
    }

    const SPEC: &str = "target = \"DESIGN.md#test\"\n\n[[spec]]\nid = \"ordered\"\nlevel = \"MUST\"\nquote = '''\nreductions MUST accumulate in ascending k order\nwithin every output row\n'''\n";

    /// The real workspace must stay compliant: every MUST requirement in
    /// `specs/` is anchored, every anchor resolves, every quote is fresh.
    /// This is the in-process twin of `cargo xtask spec` in ci.sh.
    #[test]
    fn workspace_is_compliant() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        if !root.join("specs").is_dir() {
            eprintln!("workspace specs/ not found; skipping");
            return;
        }
        let (report, violations) = check(&root);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(report.total_must() >= 20, "spec corpus shrank unexpectedly");
        assert_eq!(report.total_must(), report.total_must_anchored());
    }

    #[test]
    fn anchored_must_is_compliant_and_reported() {
        let root = fixture(
            "clean",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "//= spec: specs/test.toml#ordered\n//# reductions MUST accumulate in ascending k order\npub fn f() {}\n",
                ),
            ],
        );
        let (report, violations) = check(&root);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(report.total_must(), 1);
        assert_eq!(report.total_must_anchored(), 1);
        let json = render_report(&report, true);
        assert!(json.contains("\"must_coverage_pct\": 100.0"));
        assert!(json.contains("\"kind\": \"citation\""));
        assert!(json.contains("\"path\": \"crates/x/src/lib.rs\""));
    }

    #[test]
    fn dangling_anchor_fails() {
        // Unknown requirement id.
        let root = fixture(
            "dangling-id",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "//= spec: specs/test.toml#ghost\n//# reductions MUST accumulate\npub fn f() {}\n",
                ),
            ],
        );
        let (_, violations) = check(&root);
        assert!(lints(&violations).contains(&"dangling-anchor"), "{violations:?}");

        // Unknown spec file.
        let root = fixture(
            "dangling-file",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "//= spec: specs/test.toml#ordered\n//# ascending k order\n//= spec: specs/ghost.toml#ordered\n//# ascending k order\npub fn f() {}\n",
                ),
            ],
        );
        let (_, violations) = check(&root);
        assert_eq!(lints(&violations), vec!["dangling-anchor"]);
    }

    #[test]
    fn stale_quote_fails() {
        let root = fixture(
            "stale",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "//= spec: specs/test.toml#ordered\n//# reductions MUST accumulate in DESCENDING k order\npub fn f() {}\n",
                ),
            ],
        );
        let (_, violations) = check(&root);
        // The stale anchor no longer covers the MUST either.
        assert_eq!(lints(&violations), vec!["stale-quote", "unanchored-must"]);
    }

    #[test]
    fn unanchored_must_fails_but_should_does_not() {
        let spec = format!(
            "{SPEC}\n[[spec]]\nid = \"advisory\"\nlevel = \"SHOULD\"\nquote = \"batched paths SHOULD reuse the kernels\"\n"
        );
        let root = fixture(
            "unanchored",
            &[("specs/test.toml", spec.as_str()), ("crates/x/src/lib.rs", "pub fn f() {}\n")],
        );
        let (report, violations) = check(&root);
        assert_eq!(lints(&violations), vec!["unanchored-must"]);
        assert_eq!(report.total_requirements(), 2);
        assert_eq!(report.total_must(), 1);
        assert_eq!(report.total_must_anchored(), 0);
    }

    #[test]
    fn exceptions_cover_a_must() {
        // In code, with a reason.
        let root = fixture(
            "exception-code",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "//= spec: specs/test.toml#ordered\n//= type: exception\n//= reason: scalar tail has a fixed order by construction\npub fn f() {}\n",
                ),
            ],
        );
        let (report, violations) = check(&root);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(report.total_must_anchored(), 1);
        assert!(render_report(&report, true).contains("scalar tail"));

        // In the spec file itself.
        let spec = format!(
            "{SPEC}\n[[exception]]\nspec = \"ordered\"\nreason = \"verified by the loom suite\"\n"
        );
        let root = fixture(
            "exception-toml",
            &[("specs/test.toml", spec.as_str()), ("crates/x/src/lib.rs", "pub fn f() {}\n")],
        );
        let (_, violations) = check(&root);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn malformed_anchors_are_loud() {
        let cases: &[(&str, &str)] = &[
            // Citation with no quoted lines.
            ("//= spec: specs/test.toml#ordered\npub fn f() {}\n", "quotes no requirement text"),
            // Exception without a reason.
            (
                "//= spec: specs/test.toml#ordered\n//= type: exception\npub fn f() {}\n",
                "no `//= reason:`",
            ),
            // Citation that is not specs/<file>.toml#<id>.
            (
                "//= spec: determinism#ordered\n//# x\npub fn f() {}\n",
                "not `specs/<file>.toml#<id>`",
            ),
            // Stray quote line.
            ("//# orphan quote\npub fn f() {}\n", "outside an anchor block"),
            // Unknown directive.
            (
                "//= spec: specs/test.toml#ordered\n//= level: MUST\n//# x\npub fn f() {}\n",
                "unknown anchor directive",
            ),
        ];
        for (src, needle) in cases {
            let (_, violations) = scan_anchors("crates/x/src/lib.rs", src);
            assert!(
                violations
                    .iter()
                    .any(|v| v.lint == "malformed-anchor" && v.message.contains(needle)),
                "{src:?} -> {violations:?}"
            );
        }
    }

    #[test]
    fn anchors_inside_strings_do_not_count() {
        // The only anchor-shaped text is inside a string literal, so
        // the MUST requirement stays unanchored.
        let root = fixture(
            "masked",
            &[
                ("specs/test.toml", SPEC),
                (
                    "crates/x/src/lib.rs",
                    "pub const DOC: &str = \"//= spec: specs/test.toml#ordered\\n//# ascending k order\";\n",
                ),
            ],
        );
        let (_, violations) = check(&root);
        assert_eq!(lints(&violations), vec!["unanchored-must"]);
    }

    #[test]
    fn malformed_spec_file_fails_the_check() {
        let root = fixture(
            "malformed-spec",
            &[("specs/test.toml", "[[typo]]\n"), ("crates/x/src/lib.rs", "pub fn f() {}\n")],
        );
        let (_, violations) = check(&root);
        assert_eq!(lints(&violations), vec!["malformed-spec"]);
    }

    #[test]
    fn back_to_back_anchors_both_count() {
        let spec = format!(
            "{SPEC}\n[[spec]]\nid = \"second\"\nlevel = \"MUST\"\nquote = \"rows are written by exactly one executor\"\n"
        );
        let src = "//= spec: specs/test.toml#ordered\n//# ascending k order\n//= spec: specs/test.toml#second\n//# exactly one executor\npub fn f() {}\n";
        let root = fixture(
            "back-to-back",
            &[("specs/test.toml", spec.as_str()), ("crates/x/src/lib.rs", src)],
        );
        let (report, violations) = check(&root);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(report.total_must_anchored(), 2);
    }

    proptest! {
        /// Re-wrapping and re-indenting a quote must not go stale.
        #[test]
        fn rewrapped_quotes_still_match(body in "[a-z ]{10,60}", width in 2usize..9) {
            let requirement = format!("w{body}w");
            let words: Vec<&str> = requirement.split_whitespace().collect();
            let rewrapped = words
                .chunks(width)
                .map(|c| format!("   {}", c.join("  ")))
                .collect::<Vec<_>>()
                .join("\n");
            prop_assert!(quote_matches(&rewrapped, &requirement));
        }

        /// An edited quote (text the requirement never contained) must
        /// go stale.
        #[test]
        fn edited_quotes_do_not_match(body in "[a-z ]{10,60}") {
            let requirement = format!("w{body}w");
            let edited = format!("{requirement} 0edit0");
            prop_assert!(!quote_matches(&edited, &requirement));
        }
    }
}
