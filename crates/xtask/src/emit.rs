//! Shared output plumbing for the analysis passes.
//!
//! Both `cargo xtask audit` and `cargo xtask spec` produce the same
//! finding shape (`path:line: [lint] message`), so the human and
//! `--format json` renderers live here once. The JSON writer is
//! hand-rolled like `perfdiff`'s reader — the automation crate stays
//! dependency-free.

use crate::audit::Violation;

/// Output format for a pass, selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// `path:line: [lint] message` plus a `help:` line — the default.
    Human,
    /// One JSON array of `{path, line, lint, message, help}` objects.
    Json,
}

impl Format {
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "human" => Ok(Format::Human),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown --format {other:?} (expected human or json)")),
        }
    }
}

/// Renders findings to stdout in the selected format.
pub fn print_violations(violations: &[Violation], format: Format) {
    match format {
        Format::Human => {
            for v in violations {
                println!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message);
                println!("  help: {}", v.help);
            }
        }
        Format::Json => println!("{}", violations_json(violations)),
    }
}

/// The findings as a JSON array string (stable field order).
pub fn violations_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (n, v) in violations.iter().enumerate() {
        if n > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": {}, \"line\": {}, \"lint\": {}, \"message\": {}, \"help\": {}}}",
            json_string(&v.path),
            v.line,
            json_string(v.lint),
            json_string(&v.message),
            json_string(v.help),
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn violations_render_as_a_json_array() {
        let v = Violation {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            lint: "hash-order",
            message: "`HashMap` used".into(),
            help: "sort it",
        };
        let json = violations_json(&[v]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"lint\": \"hash-order\""));
        assert!(json.contains("\"line\": 3"));
        assert_eq!(violations_json(&[]), "[]");
    }
}
