//! Workspace-level umbrella crate for the Agua reproduction.
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); its library surface simply
//! re-exports the workspace crates so downstream code can depend on a
//! single name.
//!
//! Crate map:
//!
//! * [`agua`] — the concept-based explainer (the paper's contribution);
//! * [`agua_nn`] — the dense neural-network substrate;
//! * [`agua_text`] — description generation and text embeddings;
//! * [`abr_env`], [`cc_env`], [`ddos_env`] — the three application
//!   simulators;
//! * [`agua_controllers`] — the learning-enabled controllers under
//!   explanation;
//! * [`trustee`] — the decision-tree surrogate baseline.

#![forbid(unsafe_code)]

pub use abr_env;
pub use agua;
pub use agua_controllers;
pub use agua_nn;
pub use agua_text;
pub use cc_env;
pub use ddos_env;
pub use trustee;
