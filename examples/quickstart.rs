//! Quickstart: explain a DDoS detector's decision in five steps.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Build a learning-enabled controller (a LUCID-style flow classifier).
//! 2. Collect its inputs, embeddings `h(x)`, and outputs.
//! 3. Label each input with quantized concept similarities
//!    (describe → embed → cosine → ψ_k).
//! 4. Fit Agua's two-stage surrogate (δ then Ω).
//! 5. Ask for a factual explanation of a single decision.

use agua::concepts::ddos_concepts;
use agua::explain::factual;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::ddos::{generate_dataset, train_detector, ATTACK};
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use ddos_env::{DdosObservation, FlowKind, FlowWindow};

fn main() {
    // 1. The controller to explain: a supervised DDoS detector.
    println!("training the detector…");
    let train_flows = generate_dataset(800, 1);
    let detector = train_detector(&train_flows, 1);

    // 2. Roll the controller over traffic, recording embeddings + outputs.
    println!("collecting controller decisions…");
    let flows = generate_dataset(600, 2);
    let observations: Vec<DdosObservation> =
        flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
    let features =
        Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
    let (embeddings, logits) = detector.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();

    // 3. Concept labelling: structured description → embedding → cosine
    //    similarity against each base concept → quantized class.
    println!("labelling inputs with concepts…");
    let concepts = ddos_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let sections: Vec<_> = observations.iter().map(|o| o.sections()).collect();
    let concept_labels = labeler.label_batch(&sections, 42);

    // 4. Fit the surrogate: concept mapping δ, then linear output mapping Ω.
    println!("fitting Agua's surrogate…");
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, 2, &dataset, &TrainParams::tuned());
    let fid = model.fidelity(&dataset.embeddings, &dataset.outputs);
    println!("surrogate fidelity on the collected decisions: {fid:.3}\n");

    // 5. Explain one decision: why does the detector flag this SYN flood?
    let suspect = FlowWindow::generate_seeded(FlowKind::SynFlood, 99);
    let x = Matrix::row_vector(&DdosObservation::new(suspect).features());
    let h = detector.embeddings(&x);
    let verdict = detector.mlp.infer(&x).argmax_row(0);
    println!("detector verdict: {}", if verdict == ATTACK { "DDoS attack" } else { "benign" });
    let explanation = factual(&model, &h);
    println!("{}", explanation.render(5));
}
