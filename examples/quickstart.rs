//! Quickstart: explain a DDoS detector's decision in five steps.
//!
//! ```text
//! cargo run --release --example quickstart [-- --obs trace]
//! ```
//!
//! 1. Build a learning-enabled controller (a LUCID-style flow classifier).
//! 2. Collect its inputs, embeddings `h(x)`, and outputs.
//! 3. Label each input with quantized concept similarities
//!    (describe → embed → cosine → ψ_k).
//! 4. Fit Agua's two-stage surrogate (δ then Ω).
//! 5. Ask for a factual explanation of a single decision.
//!
//! Pass `--obs jsonl` to trace every pipeline event (labelling span,
//! per-epoch losses, explanation latency) to
//! `results/logs/quickstart.jsonl`, `--obs stderr` to watch them live,
//! `--obs metrics` for an aggregated JSON snapshot, or `--obs trace`
//! for the snapshot plus a Chrome `trace_event` file
//! (`results/logs/quickstart_trace.json`, loadable in chrome://tracing
//! or ui.perfetto.dev). Subscribers observe only: the model and the
//! explanation are byte-identical under every mode.
//!
//! With metrics attached, the example ends by printing
//! `[obs] overhead_ratio=…` — the telemetry layer's own aggregation
//! time divided by the pipeline's wall-clock time. `ci.sh` gates this
//! ratio at 5%.

use agua::concepts::ddos_concepts;
use agua::explain::factual_observed;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::ddos::{generate_dataset, train_detector, ATTACK};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{
    span_end, span_start, Fanout, JsonlWriter, Metrics, Noop, Stage, Stderr, Subscriber,
    TraceWriter,
};
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use ddos_env::{DdosObservation, FlowKind, FlowWindow};
use std::sync::Arc;
use std::time::Instant;

struct ObsSession {
    subscriber: Arc<dyn Subscriber>,
    metrics: Option<Arc<Metrics>>,
    jsonl: Option<Arc<JsonlWriter>>,
    trace: Option<Arc<TraceWriter>>,
}

fn session_from_args() -> ObsSession {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.iter().position(|a| a == "--obs") {
        Some(i) => args.get(i + 1).map(String::as_str).unwrap_or("off"),
        None => "off",
    };
    match mode {
        "off" => ObsSession { subscriber: Arc::new(Noop), metrics: None, jsonl: None, trace: None },
        "stderr" => ObsSession {
            subscriber: Arc::new(Stderr::new()),
            metrics: None,
            jsonl: None,
            trace: None,
        },
        "jsonl" => {
            let path = "results/logs/quickstart.jsonl";
            let writer = Arc::new(JsonlWriter::create(path).expect("create trace file"));
            println!("tracing pipeline events to {path}");
            ObsSession {
                subscriber: writer.clone(),
                metrics: None,
                jsonl: Some(writer),
                trace: None,
            }
        }
        "metrics" => {
            let metrics = Arc::new(Metrics::new());
            ObsSession {
                subscriber: metrics.clone(),
                metrics: Some(metrics),
                jsonl: None,
                trace: None,
            }
        }
        "trace" => {
            let path = "results/logs/quickstart_trace.json";
            let trace = Arc::new(TraceWriter::create(path).expect("create trace file"));
            let metrics = Arc::new(Metrics::new());
            println!("tracing pipeline spans to {path}");
            ObsSession {
                subscriber: Fanout::new().push(metrics.clone()).push(trace.clone()).shared(),
                metrics: Some(metrics),
                jsonl: None,
                trace: Some(trace),
            }
        }
        other => panic!("--obs expects off|stderr|jsonl|metrics|trace, got `{other}`"),
    }
}

fn main() {
    let session = session_from_args();
    let obs = session.subscriber.clone();
    let wall_start = Instant::now();

    with_scoped_subscriber(obs.clone(), || {
        let root = span_start(&*obs, Stage::Custom("quickstart"));

        // 1. The controller to explain: a supervised DDoS detector.
        println!("training the detector…");
        let span = span_start(&*obs, Stage::Custom("train_detector"));
        let train_flows = generate_dataset(800, 1);
        let detector = train_detector(&train_flows, 1);
        span_end(&*obs, span);

        // 2. Roll the controller over traffic, recording embeddings + outputs.
        println!("collecting controller decisions…");
        let span = span_start(&*obs, Stage::Custom("collect_decisions"));
        let flows = generate_dataset(600, 2);
        let observations: Vec<DdosObservation> =
            flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
        let features =
            Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
        let (embeddings, logits) = detector.embeddings_and_logits(&features);
        let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();
        span_end(&*obs, span);

        // 3. Concept labelling: structured description → embedding → cosine
        //    similarity against each base concept → quantized class.
        println!("labelling inputs with concepts…");
        let concepts = ddos_concepts();
        let labeler = ConceptLabeler::new(
            &concepts,
            Describer::new(DescriberConfig::high_quality()),
            Embedder::new(512),
            Quantizer::calibrated(),
        );
        let sections: Vec<_> = observations.iter().map(|o| o.sections()).collect();
        let concept_labels = labeler.label_batch_observed(&sections, 42, 1, &*obs);

        // 4. Fit the surrogate: concept mapping δ, then linear output mapping Ω.
        println!("fitting Agua's surrogate…");
        let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
        let model =
            AguaModel::fit_observed(&concepts, 3, 2, &dataset, &TrainParams::tuned(), &*obs);
        let fid = model.fidelity(&dataset.embeddings, &dataset.outputs);
        agua_obs::emit(&*obs, agua_obs::FitCompleted { fidelity: fid });
        println!("surrogate fidelity on the collected decisions: {fid:.3}\n");

        // 5. Explain one decision: why does the detector flag this SYN flood?
        let suspect = FlowWindow::generate_seeded(FlowKind::SynFlood, 99);
        let x = Matrix::row_vector(&DdosObservation::new(suspect).features());
        let h = detector.embeddings(&x);
        let verdict = detector.mlp.infer(&x).argmax_row(0);
        println!("detector verdict: {}", if verdict == ATTACK { "DDoS attack" } else { "benign" });
        let explanation = factual_observed(&model, &h, &*obs);
        println!("{}", explanation.render(5));

        span_end(&*obs, root);
    });

    // Fold the worker pool's utilization counters into the session and
    // persist whatever the chosen mode collected.
    let chunk_hist = agua_nn::pool::emit_worker_utilization(&*obs);
    if let Some(metrics) = &session.metrics {
        metrics.merge_latency_hist("pool.chunk_seconds", &chunk_hist);
        let snapshot = metrics.snapshot();
        let total_ns = wall_start.elapsed().as_nanos() as u64;
        let aggregation_ns = snapshot.self_overhead.get("aggregation_ns").copied().unwrap_or(0);
        let ratio = aggregation_ns as f64 / total_ns.max(1) as f64;
        let path = "results/logs/quickstart_metrics.json";
        std::fs::create_dir_all("results/logs").expect("create results/logs");
        let json = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
        std::fs::write(path, json).expect("write snapshot");
        println!("[obs] metrics snapshot written to {path}");
        println!("[obs] overhead_ratio={ratio:.6}");
    }
    if let Some(jsonl) = &session.jsonl {
        jsonl.flush().expect("flush trace");
    }
    if let Some(trace) = &session.trace {
        trace.flush().expect("flush trace");
        println!(
            "[obs] chrome trace written to {} ({} events)",
            trace.path().display(),
            trace.len()
        );
    }
}
