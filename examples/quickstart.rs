//! Quickstart: explain a DDoS detector's decision in five steps.
//!
//! ```text
//! cargo run --release --example quickstart [-- --obs jsonl]
//! ```
//!
//! 1. Build a learning-enabled controller (a LUCID-style flow classifier).
//! 2. Collect its inputs, embeddings `h(x)`, and outputs.
//! 3. Label each input with quantized concept similarities
//!    (describe → embed → cosine → ψ_k).
//! 4. Fit Agua's two-stage surrogate (δ then Ω).
//! 5. Ask for a factual explanation of a single decision.
//!
//! Pass `--obs jsonl` to trace every pipeline event (labelling span,
//! per-epoch losses, explanation latency) to
//! `results/logs/quickstart.jsonl`, or `--obs stderr` to watch them
//! live. Subscribers observe only: the model and the explanation are
//! byte-identical under every mode.

use agua::concepts::ddos_concepts;
use agua::explain::factual_observed;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::ddos::{generate_dataset, train_detector, ATTACK};
use agua_nn::Matrix;
use agua_obs::{JsonlWriter, Noop, Stderr, Subscriber};
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use ddos_env::{DdosObservation, FlowKind, FlowWindow};
use std::rc::Rc;

fn subscriber_from_args() -> Rc<dyn Subscriber> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.iter().position(|a| a == "--obs") {
        Some(i) => args.get(i + 1).map(String::as_str).unwrap_or("off"),
        None => "off",
    };
    match mode {
        "off" => Rc::new(Noop),
        "stderr" => Rc::new(Stderr::new()),
        "jsonl" => {
            let path = "results/logs/quickstart.jsonl";
            let writer = JsonlWriter::create(path).expect("create trace file");
            println!("tracing pipeline events to {path}");
            Rc::new(writer)
        }
        other => panic!("--obs expects off|stderr|jsonl, got `{other}`"),
    }
}

fn main() {
    let obs = subscriber_from_args();

    // 1. The controller to explain: a supervised DDoS detector.
    println!("training the detector…");
    let train_flows = generate_dataset(800, 1);
    let detector = train_detector(&train_flows, 1);

    // 2. Roll the controller over traffic, recording embeddings + outputs.
    println!("collecting controller decisions…");
    let flows = generate_dataset(600, 2);
    let observations: Vec<DdosObservation> =
        flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
    let features =
        Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
    let (embeddings, logits) = detector.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();

    // 3. Concept labelling: structured description → embedding → cosine
    //    similarity against each base concept → quantized class.
    println!("labelling inputs with concepts…");
    let concepts = ddos_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let sections: Vec<_> = observations.iter().map(|o| o.sections()).collect();
    let concept_labels = labeler.label_batch_observed(&sections, 42, 1, &*obs);

    // 4. Fit the surrogate: concept mapping δ, then linear output mapping Ω.
    println!("fitting Agua's surrogate…");
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit_observed(&concepts, 3, 2, &dataset, &TrainParams::tuned(), &*obs);
    let fid = model.fidelity(&dataset.embeddings, &dataset.outputs);
    agua_obs::emit(&*obs, agua_obs::FitCompleted { fidelity: fid });
    println!("surrogate fidelity on the collected decisions: {fid:.3}\n");

    // 5. Explain one decision: why does the detector flag this SYN flood?
    let suspect = FlowWindow::generate_seeded(FlowKind::SynFlood, 99);
    let x = Matrix::row_vector(&DdosObservation::new(suspect).features());
    let h = detector.embeddings(&x);
    let verdict = detector.mlp.infer(&x).argmax_row(0);
    println!("detector verdict: {}", if verdict == ATTACK { "DDoS attack" } else { "benign" });
    let explanation = factual_observed(&model, &h, &*obs);
    println!("{}", explanation.render(5));
}
