//! Prints a byte-exact fingerprint of a seeded surrogate fit (weights,
//! concept probabilities, logits) and the deterministic metrics counters.
//! Used to verify that kernel/dispatch refactors leave training
//! byte-identical: run before and after a change and diff the output.

use agua::concepts::{Concept, ConceptSet};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_nn::parallel::{with_thread_config, ThreadConfig};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::Metrics;
use std::sync::Arc;

fn toy_workload() -> (ConceptSet, SurrogateDataset) {
    let concepts = ConceptSet::new(
        (0..4)
            .map(|g| {
                Concept::new(
                    &format!("fingerprint concept {g}"),
                    &format!("synthetic concept text {g} for the fingerprint"),
                )
            })
            .collect(),
    );
    let n = 96;
    let emb_dim = 16;
    let k = 3;
    let embeddings = Matrix::from_fn(n, emb_dim, |r, c| {
        let h = (r * 131 + c * 17 + 7) % 211;
        h as f32 / 105.5 - 1.0
    });
    let concept_labels: Vec<Vec<usize>> = (0..n)
        .map(|r| {
            (0..4).map(|g| ((embeddings.get(r, g) + 1.0) / 2.0 * k as f32) as usize % k).collect()
        })
        .collect();
    let outputs: Vec<usize> =
        (0..n).map(|r| (concept_labels[r][0] + concept_labels[r][1]) % 3).collect();
    (concepts, SurrogateDataset { embeddings, concept_labels, outputs })
}

fn fnv(bits: impl Iterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() {
    let (concepts, dataset) = toy_workload();
    let params = TrainParams::fast();
    for threads in [1usize, 4] {
        let metrics = Arc::new(Metrics::new());
        let model = with_thread_config(ThreadConfig { threads, min_flops: 1 }, || {
            with_scoped_subscriber(metrics.clone(), || {
                AguaModel::fit_observed(&concepts, 3, 3, &dataset, &params, &*metrics)
            })
        });
        let mut bits: Vec<u32> =
            model.output_mapping.weights().as_slice().iter().map(|v| v.to_bits()).collect();
        bits.extend(model.output_mapping.bias().as_slice().iter().map(|v| v.to_bits()));
        bits.extend(
            model.concept_probs(&dataset.embeddings).as_slice().iter().map(|v| v.to_bits()),
        );
        bits.extend(
            model.predict_logits(&dataset.embeddings).as_slice().iter().map(|v| v.to_bits()),
        );
        let weight_hash = fnv(bits.into_iter());
        let det = metrics.snapshot().deterministic();
        let det_json = serde_json::to_string(&det).expect("serialize");
        let counters_hash = fnv(det_json.bytes().map(|b| b as u32));
        println!("threads={threads} weights=0x{weight_hash:016x} counters=0x{counters_hash:016x}");
    }
}
