//! Concept-level distribution-shift monitoring (paper §5.2.1).
//!
//! ```text
//! cargo run --release --example drift_monitoring
//! ```
//!
//! A throughput CDF tells the operator *that* the client population
//! changed between 2021 and 2024, not *why*. Agua tags every trace with
//! its dominant concepts; comparing tag proportions names the shift.

use abr_env::{AbrSimulator, DatasetEra, VideoManifest, LEVELS};
use agua::concepts::abr_concepts;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::abr::{collect_teacher_dataset, train_controller};
use agua_controllers::PolicyNet;
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rolls the controller over an era, returning one embedding matrix per
/// trace plus flattened data for surrogate training.
fn rollout(
    controller: &PolicyNet,
    era: DatasetEra,
    n_traces: usize,
    seed: u64,
) -> (Vec<Matrix>, Vec<Vec<agua_text::describer::DescribedSection>>, Matrix, Vec<usize>) {
    let traces = era.generate_traces(n_traces, 300, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let mut per_trace = Vec::new();
    let mut sections = Vec::new();
    let mut all_rows = Vec::new();
    let mut outputs = Vec::new();
    for trace in traces {
        let manifest = VideoManifest::generate(50, era.mean_complexity(), &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        let mut rows = Vec::new();
        while !sim.done() {
            let obs = sim.observation();
            let action = controller.act(&obs.features());
            rows.push(obs.features());
            sections.push(obs.sections());
            outputs.push(action);
            sim.step(action);
        }
        let f = Matrix::from_rows(&rows);
        per_trace.push(controller.embeddings(&f));
        all_rows.extend(rows);
    }
    let embeddings = controller.embeddings(&Matrix::from_rows(&all_rows));
    (per_trace, sections, embeddings, outputs)
}

fn main() {
    println!("training controller on 2021 data…");
    let samples = collect_teacher_dataset(DatasetEra::Train2021, 50, 50, 11);
    let controller = train_controller(&samples, 11);

    println!("fitting Agua…");
    let (_, train_sections, train_emb, train_out) =
        rollout(&controller, DatasetEra::Train2021, 30, 12);
    let concepts = abr_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let concept_labels = labeler.label_batch(&train_sections, 42);
    let dataset = SurrogateDataset { embeddings: train_emb, concept_labels, outputs: train_out };
    let model = AguaModel::fit(&concepts, 3, LEVELS, &dataset, &TrainParams::tuned());

    println!("tagging 2021 and 2024 deployments at the concept level…\n");
    let (batches_2021, ..) = rollout(&controller, DatasetEra::Train2021, 40, 100);
    let (batches_2024, ..) = rollout(&controller, DatasetEra::Deploy2024, 40, 200);
    let (tags_2021, tags_2024) = tag_datasets(&model, &batches_2021, &batches_2024, 3);

    let names = concepts.names();
    let shifts = detect_shift(
        &concept_proportions(&tags_2021, &names),
        &concept_proportions(&tags_2024, &names),
        &names,
    );
    println!("{:<44} {:>7} {:>7} {:>8}", "concept", "2021", "2024", "Δ");
    println!("{}", "-".repeat(70));
    for s in shifts.iter().filter(|s| s.old + s.new > 0.0) {
        println!("{:<44} {:>7.3} {:>7.3} {:>+8.3}", s.concept, s.old, s.new, s.delta);
    }
    println!(
        "\nConcepts whose share grew name the conditions the 2021 training\n\
         set under-represents — the retraining targets of paper Fig. 8."
    );
}
