//! The paper's motivating scenario end-to-end: why does the ABR
//! controller pick a *low* bitrate while the buffer is recovering?
//!
//! ```text
//! cargo run --release --example abr_streaming
//! ```
//!
//! Trains a Gelato-style controller, fits Agua, and answers the
//! operator's question with a factual explanation of the chosen bitrate
//! and a counterfactual explanation of the expected medium bitrate
//! (paper §2.2 + Fig. 4).

use abr_env::{AbrObservation, AbrSimulator, DatasetEra, VideoManifest, LEVELS};
use agua::concepts::abr_concepts;
use agua::explain::{counterfactual, factual};
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::abr::{collect_teacher_dataset, train_controller};
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The state the operator asks about: transmission times ballooned from
/// ~1 s to ~3 s, improved in the last step, and the buffer is recovering.
fn motivating_state() -> AbrObservation {
    AbrObservation {
        quality_db: vec![16.0, 15.8, 15.5, 14.9, 13.9, 12.8, 12.0, 11.4, 11.2, 11.3],
        chunk_size_mb: vec![2.2, 2.1, 2.0, 1.8, 1.4, 1.0, 0.8, 0.7, 0.65, 0.7],
        tx_time_s: vec![1.0, 1.1, 1.2, 1.5, 1.9, 2.4, 2.8, 3.0, 3.1, 2.0],
        throughput_mbps: vec![2.2, 1.9, 1.7, 1.2, 0.75, 0.45, 0.3, 0.25, 0.21, 0.35],
        buffer_s: vec![9.0, 8.4, 7.5, 6.2, 4.8, 3.6, 2.9, 2.6, 2.8, 3.4],
        qoe: vec![3.2, 3.1, 3.0, 2.7, 2.3, 1.9, 1.7, 1.6, 1.6, 1.8],
        stall_s: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.4, 0.3, 0.1, 0.0],
        upcoming_quality_db: vec![14.8, 14.5, 14.2, 14.6, 14.4],
        upcoming_size_mb: vec![2.8, 3.1, 3.4, 3.2, 3.0],
    }
}

fn main() {
    // Train the controller by cloning an MPC teacher over 2021-era traces.
    println!("training the ABR controller…");
    let samples = collect_teacher_dataset(DatasetEra::Train2021, 50, 50, 11);
    let controller = train_controller(&samples, 11);

    // Roll it out to collect the explanation dataset.
    println!("rolling the controller out…");
    let traces = DatasetEra::Train2021.generate_traces(30, 300, 12);
    let mut rng = StdRng::seed_from_u64(13);
    let mut rows = Vec::new();
    let mut sections = Vec::new();
    let mut outputs = Vec::new();
    for trace in traces {
        let manifest = VideoManifest::generate(50, 1.0, &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        while !sim.done() {
            let obs = sim.observation();
            let action = controller.act(&obs.features());
            rows.push(obs.features());
            sections.push(obs.sections());
            outputs.push(action);
            sim.step(action);
        }
    }
    let features = Matrix::from_rows(&rows);
    let embeddings = controller.embeddings(&features);

    // Label and fit the surrogate.
    println!("fitting Agua…");
    let concepts = abr_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let concept_labels = labeler.label_batch(&sections, 42);
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, LEVELS, &dataset, &TrainParams::tuned());
    println!(
        "fidelity on collected decisions: {:.3}\n",
        model.fidelity(&dataset.embeddings, &dataset.outputs)
    );

    // The operator's question.
    let state = motivating_state();
    let x = Matrix::row_vector(&state.features());
    let chosen = controller.act(&state.features());
    let h = controller.embeddings(&x);
    println!("controller's bitrate choice for the motivating state: level {chosen}");

    println!("\n— Why this low bitrate? —");
    println!("{}", factual(&model, &h).render(5));

    let medium = LEVELS / 2;
    println!("— What would drive the medium bitrate (level {medium}) instead? —");
    println!("{}", counterfactual(&model, &h, medium).render(5));
}
