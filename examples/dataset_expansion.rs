//! Concept-guided dataset expansion (paper §5.2.4).
//!
//! ```text
//! cargo run --release --example dataset_expansion
//! ```
//!
//! An operator has a large general trace store and only a handful of
//! samples from a target workload (say, a new 5G client population).
//! Agua's data-generation workflow embeds every stored state in concept
//! space; querying the store with the few target samples assembles an
//! expanded dataset whose cluster distribution tracks the target's.

use abr_env::DatasetEra;
use abr_env::{AbrSimulator, TraceFamily, VideoManifest};
use agua::lifecycle::expansion::{kmeans, ks_statistic, ConceptStore};
use agua_controllers::abr::{collect_teacher_dataset, train_controller};
use agua_controllers::PolicyNet;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rolls the controller on a trace family and embeds the visited states'
/// descriptions (every 5th state).
fn family_embeddings(
    controller: &PolicyNet,
    family: TraceFamily,
    n_traces: usize,
    seed: u64,
    describer: &Describer,
    embedder: &Embedder,
) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for t in 0..n_traces {
        let manifest = VideoManifest::generate(40, 1.0, &mut rng);
        let trace = family.generate(240, &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        let mut step = 0u64;
        while !sim.done() {
            let obs = sim.observation();
            if step.is_multiple_of(5) {
                let description =
                    describer.describe_seeded(&obs.sections(), seed ^ ((t as u64) << 10) ^ step);
                out.push(embedder.embed(&description));
            }
            let action = controller.act(&obs.features());
            sim.step(action);
            step += 1;
        }
    }
    out
}

fn main() {
    println!("training controller…");
    let samples = collect_teacher_dataset(DatasetEra::Train2021, 40, 40, 11);
    let controller = train_controller(&samples, 11);
    let describer = Describer::new(DescriberConfig::high_quality());
    let embedder = Embedder::new(512);

    // Build the store over all four workloads.
    println!("building the concept-space store…");
    let mut store_embeddings = Vec::new();
    let mut store_workloads = Vec::new();
    for (w, family) in TraceFamily::all().into_iter().enumerate() {
        let embs =
            family_embeddings(&controller, family, 10, 300 + w as u64, &describer, &embedder);
        store_workloads.extend(std::iter::repeat_n(w, embs.len()));
        store_embeddings.extend(embs);
    }
    println!("  {} states stored", store_embeddings.len());
    let (_, assignments) = kmeans(&store_embeddings, 6, 25, 17);
    let store = ConceptStore::new(store_embeddings);

    // Target workload: 5G, known only through a few held-out samples.
    let target = TraceFamily::FiveG;
    println!("\ntarget workload: {} — querying with 24 held-out samples…", target.name());
    let queries = family_embeddings(&controller, target, 3, 900, &describer, &embedder);
    let expanded: Vec<usize> = queries.iter().take(24).flat_map(|q| store.query(q, 10)).collect();

    let expanded_clusters: Vec<usize> = expanded.iter().map(|&i| assignments[i]).collect();
    let target_clusters: Vec<usize> = assignments
        .iter()
        .zip(&store_workloads)
        .filter(|(_, &w)| TraceFamily::all()[w] == target)
        .map(|(&c, _)| c)
        .collect();
    let ks = ks_statistic(&expanded_clusters, &target_clusters, 6);

    println!("  expanded dataset: {} samples", expanded.len());
    println!("  KS statistic vs target cluster distribution: {ks:.4}");
    println!("  (0 = identical distributions, 1 = disjoint; paper reports < 0.08)");

    // Show the cluster histograms side by side.
    let hist = |xs: &[usize]| -> Vec<f32> {
        let mut h = vec![0.0f32; 6];
        for &x in xs {
            h[x] += 1.0 / xs.len() as f32;
        }
        h
    };
    let he = hist(&expanded_clusters);
    let ht = hist(&target_clusters);
    println!("\n  cluster   target   expanded");
    for c in 0..6 {
        println!("  {c:>7}   {:>6.2}   {:>8.2}", ht[c], he[c]);
    }
}
