//! Debugging a congestion-control policy with Agua (paper §5.2.3).
//!
//! ```text
//! cargo run --release --example cc_debugging
//! ```
//!
//! The original controller oscillates on a *stable* link. Agua's batched
//! explanation reveals latency concepts dominating where none should be
//! active — a distorted latency perception. The debugged variant (longer
//! history + average-latency feature) holds throughput near capacity.

use agua::concepts::cc_concepts;
use agua::explain::{batched, majority_class};
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::cc::{
    rollout_throughput, train_controller_dagger, utilization_stats, CcVariant,
};
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use cc_env::{CapacityProcess, CcSimulator, LinkConfig, LinkPattern};

fn main() {
    // The original (buggy) controller.
    println!("training the original controller…");
    let original = train_controller_dagger(CcVariant::Original, 600, 3, 21);

    // Roll it on a stable link where nothing should be happening.
    println!("rolling out on a stable 8 Mbps link…");
    let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 800, 5);
    let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 4.0, 10);
    for _ in 0..10 {
        sim.step_at_current_rate();
    }
    let mut rows = Vec::new();
    let mut sections = Vec::new();
    let mut outputs = Vec::new();
    while !sim.done() {
        let obs = sim.observation();
        let f = obs.features(false);
        let a = original.act(&f);
        rows.push(f);
        sections.push(obs.sections());
        outputs.push(a);
        sim.step(a);
    }
    let features = Matrix::from_rows(&rows);
    let embeddings = original.embeddings(&features);

    // Fit Agua and diagnose.
    println!("fitting Agua and diagnosing…\n");
    let concepts = cc_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let concept_labels = labeler.label_batch(&sections, 7);
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, cc_env::ACTIONS, &dataset, &TrainParams::tuned());

    let class = majority_class(&model, &dataset.embeddings);
    let diagnosis = batched(&model, &dataset.embeddings, class);
    println!("dominant concepts behind the controller's behaviour on a STABLE link:");
    for c in diagnosis.contributions.iter().take(4) {
        println!("  {:<40} {:.4}", c.concept, c.weight);
    }
    println!(
        "\n→ latency concepts dominate although the link is stable: the\n\
         controller's latency perception is distorted. Fix: average-latency\n\
         feature + history 10 → 15, gentler retraining.\n"
    );

    // Train the debugged controller and compare.
    println!("training the debugged controller…");
    let debugged = train_controller_dagger(CcVariant::Debugged, 600, 3, 21);

    let pattern = LinkPattern::Stable { mbps: 8.0 };
    let orig = rollout_throughput(&original, CcVariant::Original, pattern, 600, 9);
    let fixed = rollout_throughput(&debugged, CcVariant::Debugged, pattern, 600, 9);
    let (ou, ocv) = utilization_stats(&orig[150..]);
    let (fu, fcv) = utilization_stats(&fixed[150..]);
    println!("\n{:<12} {:>12} {:>16}", "controller", "utilization", "throughput CV");
    println!("{:<12} {:>12.3} {:>16.3}", "original", ou, ocv);
    println!("{:<12} {:>12.3} {:>16.3}", "debugged", fu, fcv);
}
