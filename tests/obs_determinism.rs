//! The observability layer must observe, never influence (ISSUE PR 2,
//! DESIGN.md §9):
//!
//! * The deterministic portion of a [`agua_obs::Metrics`] snapshot —
//!   counters, gauges, curves — is identical whether training runs on 1
//!   or 4 worker threads, because events are emitted only from the
//!   dispatching thread.
//! * Attaching a [`agua_obs::JsonlWriter`] (or any subscriber) leaves
//!   the trained weights byte-identical to a `Noop` run.

use agua::concepts::{Concept, ConceptSet};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_nn::parallel::{with_thread_config, ThreadConfig};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{JsonlWriter, Metrics, MetricsSnapshot, Noop};
use std::sync::Arc;

fn toy_workload() -> (ConceptSet, SurrogateDataset) {
    let concepts = ConceptSet::new(
        (0..4)
            .map(|g| {
                Concept::new(
                    &format!("obs concept {g}"),
                    &format!("synthetic concept text {g} for the observability test"),
                )
            })
            .collect(),
    );
    let n = 96;
    let emb_dim = 16;
    let k = 3;
    let embeddings = Matrix::from_fn(n, emb_dim, |r, c| {
        let h = (r * 131 + c * 17 + 7) % 211;
        h as f32 / 105.5 - 1.0
    });
    let concept_labels: Vec<Vec<usize>> = (0..n)
        .map(|r| {
            (0..4).map(|g| ((embeddings.get(r, g) + 1.0) / 2.0 * k as f32) as usize % k).collect()
        })
        .collect();
    let outputs: Vec<usize> =
        (0..n).map(|r| (concept_labels[r][0] + concept_labels[r][1]) % 3).collect();
    (concepts, SurrogateDataset { embeddings, concept_labels, outputs })
}

fn model_bits(model: &AguaModel, embeddings: &Matrix) -> Vec<u32> {
    let mut out: Vec<u32> =
        model.output_mapping.weights().as_slice().iter().map(|v| v.to_bits()).collect();
    out.extend(model.output_mapping.bias().as_slice().iter().map(|v| v.to_bits()));
    out.extend(model.concept_probs(embeddings).as_slice().iter().map(|v| v.to_bits()));
    out.extend(model.predict_logits(embeddings).as_slice().iter().map(|v| v.to_bits()));
    out
}

/// Fits the toy workload at `threads` workers with a fresh `Metrics`
/// subscriber attached (both explicitly and as the ambient scope, so
/// kernel dispatches are captured) and returns the snapshot.
fn observed_fit(threads: usize) -> (MetricsSnapshot, Vec<u32>) {
    let (concepts, dataset) = toy_workload();
    let params = TrainParams::fast();
    let metrics = Arc::new(Metrics::new());
    // min_flops: 1 forces even this small workload through the threaded
    // kernels so the kernel counters are not vacuously equal.
    let model = with_thread_config(ThreadConfig { threads, min_flops: 1 }, || {
        with_scoped_subscriber(metrics.clone(), || {
            AguaModel::fit_observed(&concepts, 3, 3, &dataset, &params, &*metrics)
        })
    });
    (metrics.snapshot(), model_bits(&model, &dataset.embeddings))
}

#[test]
fn metrics_deterministic_view_is_identical_at_1_and_4_threads() {
    let (single, single_bits) = observed_fit(1);
    let (multi, multi_bits) = observed_fit(4);

    // The snapshot must have real content, not be trivially equal.
    assert!(single.counters["delta_fit.epochs"] > 0);
    assert!(single.counters["omega_fit.epochs"] > 0);
    assert_eq!(single.curves["delta_fit.loss"].len(), single.counters["delta_fit.epochs"] as usize);
    assert!(
        single.counters.keys().any(|k| k.starts_with("kernel.")),
        "kernel dispatches must reach the scoped subscriber: {:?}",
        single.counters.keys().collect::<Vec<_>>()
    );
    assert!(single.gauges.contains_key("delta_fit.final_loss"));
    assert!(
        !single.dists.is_empty(),
        "loss/kernel distributions must appear in the deterministic view"
    );

    assert_eq!(
        single.deterministic(),
        multi.deterministic(),
        "counters/gauges/curves must not depend on the thread count"
    );
    assert_eq!(single_bits, multi_bits, "observed fits stay byte-identical across threads");
}

#[test]
fn jsonl_tracing_leaves_trained_weights_byte_identical_to_noop() {
    let (concepts, dataset) = toy_workload();
    let params = TrainParams::fast();

    let baseline = AguaModel::fit_observed(&concepts, 3, 3, &dataset, &params, &Noop);

    let path =
        std::env::temp_dir().join(format!("agua-obs-determinism-{}.jsonl", std::process::id()));
    let traced = {
        let writer = Arc::new(JsonlWriter::create(&path).expect("create trace file"));
        let model = with_scoped_subscriber(writer.clone(), || {
            AguaModel::fit_observed(&concepts, 3, 3, &dataset, &params, &*writer)
        });
        writer.flush().expect("flush trace");
        model
    };

    assert_eq!(
        model_bits(&baseline, &dataset.embeddings),
        model_bits(&traced, &dataset.embeddings),
        "tracing must not perturb the trained weights"
    );

    let text = std::fs::read_to_string(&path).expect("read trace");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "trace must not be empty");
    for line in &lines {
        let value: serde_json::Value =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        assert!(value["event"].is_string(), "line missing event tag: {line}");
    }
    assert!(
        lines.iter().any(|l| l.contains("\"epoch_completed\"")),
        "per-epoch events must be traced"
    );
    std::fs::remove_file(&path).ok();
}
