//! Property tests for the observability histograms (DESIGN.md §9):
//!
//! * The deterministic view of a [`agua_obs::Metrics`] snapshot — which
//!   includes every `dists` histogram's bucket counts — serializes to
//!   byte-identical JSON whether the workload ran on 1, 2, 4, or 7
//!   worker threads, even when the inputs are poisoned with NaN and ∞.
//! * Recording a value stream through per-worker histograms and merging
//!   them in worker-index order is indistinguishable from recording the
//!   stream into one histogram — for any partition, any poison pattern.
//! * Histogram merge is associative, so hierarchical merges (worker →
//!   pool → run) need no particular tree shape.

use agua_nn::parallel::{par_for_each_rows, par_matmul, with_thread_config, ThreadConfig};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{Histogram, Metrics};
use proptest::prelude::*;
use std::sync::Arc;

/// Replaces selected entries with non-finite values: index 3k → NaN,
/// 3k+1 → +∞, 3k+2 → -∞.
fn poison(values: &mut [f32], poison_idx: &[usize]) {
    for (i, &idx) in poison_idx.iter().enumerate() {
        if values.is_empty() {
            return;
        }
        let slot = idx % values.len();
        values[slot] = match i % 3 {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
    }
}

/// Runs a small poisoned matmul + row-transform workload at `threads`
/// workers with a fresh `Metrics` scoped in, and returns the serialized
/// deterministic view of the snapshot.
fn deterministic_json(threads: usize, seed: u64, poison_idx: &[usize]) -> String {
    let n = 24;
    let mut a_values: Vec<f32> = (0..n * n)
        .map(|i| ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) % 997) as f32)
        .collect();
    poison(&mut a_values, poison_idx);
    let a = Matrix::from_fn(n, n, |r, c| a_values[r * n + c] / 100.0 - 4.0);
    let b = Matrix::from_fn(n, n, |r, c| ((r * 31 + c * 7 + seed as usize) % 113) as f32 / 56.5);

    let metrics = Arc::new(Metrics::new());
    // min_flops: 1 forces even this small workload through the threaded
    // kernels, so the dists histograms get real kernel traffic.
    with_thread_config(ThreadConfig { threads, min_flops: 1 }, || {
        with_scoped_subscriber(metrics.clone(), || {
            let mut product = par_matmul(&a, &b);
            par_for_each_rows(&mut product, |_, row| {
                for v in row.iter_mut() {
                    *v = v.tanh();
                }
            });
            product
        })
    });

    let det = metrics.snapshot().deterministic();
    assert!(
        det.dists.keys().any(|k| k.starts_with("kernel.")),
        "kernel histograms must be populated: {:?}",
        det.dists.keys().collect::<Vec<_>>()
    );
    serde_json::to_string(&det).expect("serialize deterministic snapshot")
}

proptest! {
    #[test]
    fn deterministic_snapshot_is_thread_count_invariant(
        seed in 0u64..1_000_000,
        poison_idx in prop::collection::vec(0usize..576, 0..12),
    ) {
        let reference = deterministic_json(1, seed, &poison_idx);
        for threads in [2usize, 4, 7] {
            let other = deterministic_json(threads, seed, &poison_idx);
            prop_assert_eq!(
                &reference, &other,
                "deterministic snapshot diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn sharded_recording_merges_to_the_sequential_histogram(
        values in prop::collection::vec(-1.0e12f64..1.0e12, 1..200),
        poison_idx in prop::collection::vec(0usize..200, 0..20),
        shards in 1usize..8,
    ) {
        let mut poisoned: Vec<f64> = values;
        for (i, &idx) in poison_idx.iter().enumerate() {
            let len = poisoned.len();
            poisoned[idx % len] = match i % 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
        }

        let mut sequential = Histogram::new();
        for &v in &poisoned {
            sequential.record(v);
        }

        // Deal values round-robin to `shards` workers (the order a
        // chunked pool dispatch interleaves them), then merge the
        // workers back in index order.
        let mut workers = vec![Histogram::new(); shards];
        for (i, &v) in poisoned.iter().enumerate() {
            workers[i % shards].record(v);
        }
        let mut merged = Histogram::new();
        for worker in &workers {
            merged.merge(worker);
        }

        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.nonfinite(), sequential.nonfinite());
        prop_assert_eq!(
            serde_json::to_string(&merged.snapshot()).unwrap(),
            serde_json::to_string(&sequential.snapshot()).unwrap()
        );
    }
}

#[test]
fn histogram_merge_is_associative() {
    let streams: [&[f64]; 3] = [
        &[1.0e-9, 3.5, 700.0, f64::NAN, 0.02],
        &[f64::INFINITY, 2.0, 2.0, 2.0],
        &[-5.0, 1.0e30, f64::NEG_INFINITY, 0.0],
    ];
    let [a, b, c] = streams.map(|stream| {
        let mut h = Histogram::new();
        for &v in stream {
            h.record(v);
        }
        h
    });

    // (a ⊔ b) ⊔ c
    let mut left = Histogram::new();
    left.merge(&a);
    left.merge(&b);
    let mut left_assoc = left.clone();
    left_assoc.merge(&c);

    // a ⊔ (b ⊔ c)
    let mut right = Histogram::new();
    right.merge(&b);
    right.merge(&c);
    let mut right_assoc = a.clone();
    right_assoc.merge(&right);

    assert_eq!(left_assoc, right_assoc);
    assert_eq!(left_assoc.snapshot(), right_assoc.snapshot());

    // Merging an empty histogram is the identity.
    let mut with_empty = left_assoc.clone();
    with_empty.merge(&Histogram::new());
    assert_eq!(with_empty, left_assoc);
}
