//! End-to-end integration test of the Agua pipeline on the ABR
//! application, including the lifecycle tools (drift detection and
//! retraining selection) across the 2021 → 2024 era shift.

use abr_env::{AbrSimulator, DatasetEra, VideoManifest, LEVELS};
use agua::concepts::abr_concepts;
use agua::explain::{counterfactual, factual};
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::lifecycle::drift::{concept_proportions, detect_shift, tag_datasets};
use agua::lifecycle::retrain::select_for_retraining;
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::abr::{collect_teacher_dataset, train_controller};
use agua_controllers::PolicyNet;
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rollout(
    controller: &PolicyNet,
    era: DatasetEra,
    n_traces: usize,
    seed: u64,
) -> (Vec<Matrix>, Vec<Vec<agua_text::describer::DescribedSection>>, Matrix, Vec<usize>) {
    let traces = era.generate_traces(n_traces, 240, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let mut per_trace = Vec::new();
    let mut sections = Vec::new();
    let mut all_rows = Vec::new();
    let mut outputs = Vec::new();
    for trace in traces {
        let manifest = VideoManifest::generate(40, era.mean_complexity(), &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        let mut rows = Vec::new();
        while !sim.done() {
            let obs = sim.observation();
            let action = controller.act(&obs.features());
            rows.push(obs.features());
            sections.push(obs.sections());
            outputs.push(action);
            sim.step(action);
        }
        per_trace.push(controller.embeddings(&Matrix::from_rows(&rows)));
        all_rows.extend(rows);
    }
    let embeddings = controller.embeddings(&Matrix::from_rows(&all_rows));
    (per_trace, sections, embeddings, outputs)
}

fn fit() -> (PolicyNet, AguaModel, agua::concepts::ConceptSet) {
    let samples = collect_teacher_dataset(DatasetEra::Train2021, 30, 40, 11);
    let controller = train_controller(&samples, 11);
    let (_, sections, embeddings, outputs) = rollout(&controller, DatasetEra::Train2021, 20, 12);
    let concepts = abr_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let concept_labels = labeler.label_batch(&sections, 42);
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, LEVELS, &dataset, &TrainParams::fast());
    (controller, model, concepts)
}

#[test]
fn surrogate_beats_majority_baseline_by_a_wide_margin() {
    let (controller, model, _) = fit();
    let (_, _, embeddings, outputs) = rollout(&controller, DatasetEra::Train2021, 10, 99);
    let fid = model.fidelity(&embeddings, &outputs);

    let mut counts = [0usize; LEVELS];
    for &y in &outputs {
        counts[y] += 1;
    }
    let baseline = *counts.iter().max().unwrap() as f32 / outputs.len() as f32;
    assert!(fid > baseline + 0.15, "fidelity {fid} must clear the majority baseline {baseline}");
    assert!(fid > 0.75, "held-out ABR fidelity {fid}");
}

#[test]
fn factual_and_counterfactual_explanations_are_well_formed() {
    let (controller, model, _) = fit();
    let (_, _, embeddings, _) = rollout(&controller, DatasetEra::Train2021, 2, 7);
    let one = embeddings.select_rows(&[5]);

    let fact = factual(&model, &one);
    assert!(fact.factual);
    assert!(fact.output_prob > 0.0);
    assert_eq!(fact.contributions.len(), model.concepts());

    let other_class = (fact.output_class + 1) % LEVELS;
    let counter = counterfactual(&model, &one, other_class);
    assert!(!counter.factual);
    assert_eq!(counter.output_class, other_class);
    // Counterfactual weights are normalized to sum to 1.
    let total: f32 = counter.contributions.iter().map(|c| c.weight).sum();
    assert!((total - 1.0).abs() < 1e-3, "counterfactual weights sum {total}");
}

#[test]
fn drift_detection_flags_the_era_shift_and_selects_retraining_traces() {
    let (controller, model, concepts) = fit();
    let (batches_2021, ..) = rollout(&controller, DatasetEra::Train2021, 25, 100);
    let (batches_2024, ..) = rollout(&controller, DatasetEra::Deploy2024, 25, 200);
    let (tags_2021, tags_2024) = tag_datasets(&model, &batches_2021, &batches_2024, 3);

    let names = concepts.names();
    let shifts = detect_shift(
        &concept_proportions(&tags_2021, &names),
        &concept_proportions(&tags_2024, &names),
        &names,
    );
    // The eras differ materially, so some concept's share must move.
    assert!(shifts[0].delta > 0.03, "expected a clear concept increase, got {:?}", &shifts[..3]);

    // Select against the strongest observed shift, not the detection
    // floor: with top-3 tags per trace, nearly every concept clears the
    // floor and selection would degenerate to copying the dataset.
    let strong = (shifts[0].delta * 0.5).max(0.03);
    let selected = select_for_retraining(&tags_2024, &shifts, strong);
    assert!(!selected.is_empty(), "some 2024 traces must be selected");
    assert!(selected.len() < tags_2024.len(), "selection must filter, not copy");
}
