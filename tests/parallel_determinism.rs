//! End-to-end determinism of surrogate training under `AGUA_THREADS`.
//!
//! Lives in its own integration-test binary (one test, own process) so
//! setting the environment variable cannot race with other tests: the
//! parallel backend reads `AGUA_THREADS` once per process.

use agua::concepts::{Concept, ConceptSet};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_nn::parallel::{with_thread_config, ThreadConfig};
use agua_nn::Matrix;

fn toy_workload() -> (ConceptSet, SurrogateDataset) {
    let concepts = ConceptSet::new(
        (0..4)
            .map(|g| {
                Concept::new(
                    &format!("determinism concept {g}"),
                    &format!("synthetic concept text {g} for the determinism test"),
                )
            })
            .collect(),
    );
    let n = 96;
    let emb_dim = 16;
    let k = 3;
    let embeddings = Matrix::from_fn(n, emb_dim, |r, c| {
        let h = (r * 131 + c * 17 + 7) % 211;
        h as f32 / 105.5 - 1.0
    });
    let concept_labels: Vec<Vec<usize>> = (0..n)
        .map(|r| {
            (0..4).map(|g| ((embeddings.get(r, g) + 1.0) / 2.0 * k as f32) as usize % k).collect()
        })
        .collect();
    let outputs: Vec<usize> =
        (0..n).map(|r| (concept_labels[r][0] + concept_labels[r][1]) % 3).collect();
    (concepts, SurrogateDataset { embeddings, concept_labels, outputs })
}

fn model_bits(model: &AguaModel, embeddings: &Matrix) -> Vec<u32> {
    let mut out: Vec<u32> =
        model.output_mapping.weights().as_slice().iter().map(|v| v.to_bits()).collect();
    out.extend(model.output_mapping.bias().as_slice().iter().map(|v| v.to_bits()));
    // δ's weights are covered functionally: identical concept
    // probabilities on the training embeddings imply identical δ.
    out.extend(model.concept_probs(embeddings).as_slice().iter().map(|v| v.to_bits()));
    out.extend(model.predict_logits(embeddings).as_slice().iter().map(|v| v.to_bits()));
    out
}

#[test]
fn fit_under_agua_threads_4_reproduces_single_thread_weights() {
    std::env::set_var("AGUA_THREADS", "4");
    let env_cfg = ThreadConfig::current();
    assert_eq!(env_cfg.threads, 4, "AGUA_THREADS must be honored");

    let (concepts, dataset) = toy_workload();
    let params = TrainParams::fast();
    let fit = || AguaModel::fit(&concepts, 3, 3, &dataset, &params);

    // min_flops: 1 forces even this small workload through the threaded
    // kernels so the comparison is not vacuous.
    let single = with_thread_config(ThreadConfig { threads: 1, min_flops: 1 }, fit);
    let multi = with_thread_config(ThreadConfig { threads: 4, min_flops: 1 }, fit);
    // And the plain env-configured path (default size gate).
    let env_default = fit();

    let reference = model_bits(&single, &dataset.embeddings);
    assert_eq!(
        reference,
        model_bits(&multi, &dataset.embeddings),
        "4-thread training must reproduce the 1-thread weights byte-for-byte"
    );
    assert_eq!(
        reference,
        model_bits(&env_default, &dataset.embeddings),
        "AGUA_THREADS=4 with the default size gate must also reproduce them"
    );
}
