//! End-to-end integration test of the full Agua pipeline on the DDoS
//! application, exercising every crate through the public API: traffic
//! generation → detector training → rollout → describe/embed/quantize →
//! surrogate fit → fidelity → explanations.

use agua::concepts::ddos_concepts;
use agua::explain::{batched, factual, majority_class};
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::ddos::{generate_dataset, train_detector, ATTACK, BENIGN};
use agua_controllers::PolicyNet;
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use ddos_env::{DdosObservation, FlowKind, FlowWindow};

struct Fitted {
    detector: PolicyNet,
    model: AguaModel,
}

fn fit() -> Fitted {
    let train_flows = generate_dataset(500, 1);
    let detector = train_detector(&train_flows, 1);

    let flows = generate_dataset(400, 2);
    let observations: Vec<DdosObservation> =
        flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
    let features =
        Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
    let (embeddings, logits) = detector.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();

    let concepts = ddos_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let sections: Vec<_> = observations.iter().map(|o| o.sections()).collect();
    let concept_labels = labeler.label_batch(&sections, 42);
    let dataset = SurrogateDataset { embeddings, concept_labels, outputs };
    let model = AguaModel::fit(&concepts, 3, 2, &dataset, &TrainParams::tuned());
    Fitted { detector, model }
}

fn embed_flow(f: &Fitted, kind: FlowKind, seed: u64) -> Matrix {
    let w = FlowWindow::generate_seeded(kind, seed);
    let x = Matrix::row_vector(&DdosObservation::new(w).features());
    f.detector.embeddings(&x)
}

#[test]
fn surrogate_reaches_high_fidelity_on_unseen_flows() {
    let fitted = fit();
    let flows = generate_dataset(200, 3);
    let observations: Vec<DdosObservation> =
        flows.iter().map(|s| DdosObservation::new(s.window.clone())).collect();
    let features =
        Matrix::from_rows(&observations.iter().map(|o| o.features()).collect::<Vec<_>>());
    let (embeddings, logits) = fitted.detector.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();
    let fid = fitted.model.fidelity(&embeddings, &outputs);
    assert!(fid > 0.9, "held-out fidelity {fid}");
}

#[test]
fn factual_explanations_separate_attack_and_benign_drivers() {
    let fitted = fit();
    let attack_emb = embed_flow(&fitted, FlowKind::SynFlood, 7);
    let benign_emb = embed_flow(&fitted, FlowKind::BenignHttp, 7);

    let attack_exp = factual(&fitted.model, &attack_emb);
    let benign_exp = factual(&fitted.model, &benign_emb);
    assert_eq!(attack_exp.output_class, ATTACK);
    assert_eq!(benign_exp.output_class, BENIGN);
    assert_ne!(
        attack_exp.top_concepts(3),
        benign_exp.top_concepts(3),
        "attack and benign flows must be explained by different concept rankings"
    );
    // Anomaly/irregularity concepts must lead the attack explanation.
    let top = &attack_exp.top_concepts(2);
    assert!(
        top.iter().any(|t| t.contains("Anomal") || t.contains("Irregular") || t.contains("Rate")),
        "attack explanation led by {top:?}"
    );
}

#[test]
fn batched_explanation_is_consistent_with_singles() {
    let fitted = fit();
    let rows: Vec<Matrix> =
        (0..10).map(|s| embed_flow(&fitted, FlowKind::UdpFlood, 100 + s)).collect();
    let all = Matrix::from_rows(&rows.iter().map(|m| m.row(0).to_vec()).collect::<Vec<_>>());
    let class = majority_class(&fitted.model, &all);
    assert_eq!(class, ATTACK, "UDP floods must be classified as attacks");
    let b = batched(&fitted.model, &all, class);
    assert_eq!(b.batch_size, 10);
    // The batch's dominant concept must also be dominant for a majority
    // of the individual flows.
    let dominant = &b.contributions[0].concept;
    let wins = rows
        .iter()
        .filter(|emb| &factual(&fitted.model, emb).contributions[0].concept == dominant)
        .count();
    assert!(wins >= 5, "batch dominant {dominant} won only {wins}/10 singles");
}

#[test]
fn explanation_weights_are_probabilities() {
    let fitted = fit();
    let emb = embed_flow(&fitted, FlowKind::LowAndSlow, 55);
    let exp = factual(&fitted.model, &emb);
    let total: f32 = exp.contributions.iter().map(|c| c.weight).sum();
    assert!((total - exp.output_prob).abs() < 1e-3);
    assert!(exp.contributions.iter().all(|c| c.weight >= 0.0));
}
