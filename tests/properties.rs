//! Property-based tests on the core invariants of the workspace, using
//! proptest over randomized inputs.

use agua::labeling::Quantizer;
use agua::robustness::{recall_at_k, top_k_indices};
use agua_nn::{softmax_cross_entropy, softmax_rows, Matrix};
use agua_text::embedding::{cosine_similarity, Embedder};
use agua_text::stats::{analyze_series, SignalSeries};
use proptest::prelude::*;

proptest! {
    /// Softmax rows are valid probability distributions for any finite
    /// logits.
    #[test]
    fn softmax_rows_are_distributions(values in prop::collection::vec(-50.0f32..50.0, 3..30)) {
        let m = Matrix::from_rows(&[values]);
        let p = softmax_rows(&m);
        let sum: f32 = p.row(0).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.row(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Cross-entropy is non-negative and its gradient sums to ~0 per row
    /// (softmax minus one-hot).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        values in prop::collection::vec(-10.0f32..10.0, 4),
        target in 0usize..4,
    ) {
        let m = Matrix::from_rows(&[values]);
        let (loss, grad) = softmax_cross_entropy(&m, &[target]);
        prop_assert!(loss >= 0.0);
        let s: f32 = grad.row(0).iter().sum();
        prop_assert!(s.abs() < 1e-5);
    }

    /// Matrix multiplication distributes over addition:
    /// (A+B)C = AC + BC.
    #[test]
    fn matmul_distributes(seed in 0u64..1000) {
        let a = Matrix::from_fn(3, 4, |r, c| ((seed + r as u64 * 7 + c as u64) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(3, 4, |r, c| ((seed + r as u64 * 3 + c as u64 * 5) % 11) as f32 - 5.0);
        let c = Matrix::from_fn(4, 2, |r, _| ((seed + r as u64) % 7) as f32 - 3.0);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The quantizer is monotone: a higher similarity never maps to a
    /// lower class.
    #[test]
    fn quantizer_is_monotone(a in 0.0f32..1.0, b in 0.0f32..1.0) {
        let q = Quantizer::calibrated();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
        prop_assert!(q.quantize(hi) < q.classes());
    }

    /// Cosine similarity is symmetric and bounded.
    #[test]
    fn cosine_is_symmetric(words_a in "[a-z ]{5,40}", words_b in "[a-z ]{5,40}") {
        let e = Embedder::new(128);
        let va = e.embed(&words_a);
        let vb = e.embed(&words_b);
        let ab = cosine_similarity(&va, &vb);
        let ba = cosine_similarity(&vb, &va);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    /// Self-similarity of a non-degenerate text is 1.
    #[test]
    fn embedding_self_similarity_is_one(n in 1usize..8) {
        let e = Embedder::new(256);
        let text = format!("{} throughput buffer latency", "volatile ".repeat(n));
        let v = e.embed(&text);
        prop_assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-5);
    }

    /// Series analysis is scale-equivariant in the trend: scaling values
    /// and max together preserves the classification.
    #[test]
    fn trend_analysis_is_scale_invariant(
        base in 0.5f32..5.0,
        slope in -0.2f32..0.2,
        scale in 0.5f32..20.0,
    ) {
        let values: Vec<f32> = (0..10).map(|i| (base + slope * i as f32).max(0.0)).collect();
        let scaled: Vec<f32> = values.iter().map(|v| v * scale).collect();
        let a = analyze_series(&SignalSeries::new("s", "u", values, 10.0));
        let b = analyze_series(&SignalSeries::new("s", "u", scaled, 10.0 * scale));
        prop_assert_eq!(a.overall.trend, b.overall.trend);
        prop_assert_eq!(a.overall.level, b.overall.level);
    }

    /// recall@k of any scores against themselves is 1, and recall is in
    /// [0, 1] against any other scores.
    #[test]
    fn recall_bounds(
        a in prop::collection::vec(0.0f32..1.0, 8),
        b in prop::collection::vec(0.0f32..1.0, 8),
        k in 1usize..5,
    ) {
        prop_assert_eq!(recall_at_k(&a, &a, k), 1.0);
        let r = recall_at_k(&a, &b, k);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// top_k returns exactly k distinct indices within range.
    #[test]
    fn top_k_is_well_formed(scores in prop::collection::vec(-5.0f32..5.0, 1..20)) {
        let k = (scores.len() / 2).max(1);
        let idx = top_k_indices(&scores, k);
        prop_assert_eq!(idx.len(), k);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "indices must be distinct");
        prop_assert!(idx.iter().all(|&i| i < scores.len()));
    }
}

/// Simulator invariants under random action sequences.
mod simulator_props {
    use super::*;
    use abr_env::{AbrSimulator, TraceFamily, VideoManifest, LEVELS};
    use cc_env::{CapacityProcess, CcSimulator, LinkConfig, LinkPattern};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// The ABR buffer never exceeds its cap or goes negative, and
        /// every download terminates, under arbitrary action sequences.
        #[test]
        fn abr_invariants_hold_for_random_policies(
            seed in 0u64..500,
            actions in prop::collection::vec(0usize..LEVELS, 30),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let manifest = VideoManifest::generate(30, 1.0, &mut rng);
            let trace = TraceFamily::ThreeG.generate(300, &mut rng);
            let mut sim = AbrSimulator::new(manifest, trace);
            for &a in &actions {
                let out = sim.step(a);
                prop_assert!(sim.buffer() >= 0.0);
                prop_assert!(sim.buffer() <= abr_env::observation::BUFFER_MAX + 1e-3);
                prop_assert!(out.tx_time > 0.0 && out.tx_time <= 20.0 + 1e-3);
                prop_assert!(out.stall >= 0.0);
            }
            prop_assert!(sim.done());
        }

        /// CC queue accounting conserves data: delivered never exceeds
        /// capacity, loss stays in [0,1], latency ≥ base RTT.
        #[test]
        fn cc_invariants_hold_for_random_policies(
            seed in 0u64..500,
            actions in prop::collection::vec(0usize..cc_env::ACTIONS, 50),
        ) {
            let cap = CapacityProcess::generate_seeded(
                LinkPattern::Volatile { mbps: 6.0, sigma: 1.0 },
                60,
                seed,
            );
            let config = LinkConfig::default();
            let mut sim = CcSimulator::new(cap, config, 2.0);
            for &a in &actions {
                if sim.done() {
                    break;
                }
                let capacity = sim.current_capacity();
                let s = sim.step(a);
                prop_assert!(s.delivered_mbps <= capacity + 1e-3);
                prop_assert!((0.0..=1.0).contains(&s.loss_rate));
                // Latency jitter is ±4%; allow that margin below base.
                prop_assert!(s.latency_ms >= config.base_rtt_ms * 0.95);
            }
        }
    }
}

mod parallel_backend {
    use agua_nn::parallel::{
        par_matmul, par_matmul_nt, par_matmul_tn, with_thread_config, ThreadConfig,
    };
    use agua_nn::Matrix;
    use proptest::prelude::*;

    /// Forces the parallel path regardless of operation size.
    fn forced(threads: usize) -> ThreadConfig {
        ThreadConfig { threads, min_flops: 0 }
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    /// Deterministic pseudo-random matrix with a sprinkling of exact
    /// zeros (to exercise the finite-gated sparse fast path).
    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((r * 31 + c * 7) as u64);
            if h.is_multiple_of(9) {
                0.0
            } else {
                ((h % 2003) as f32 - 1001.0) / 211.0
            }
        })
    }

    proptest! {
        /// The row-partitioned parallel matmuls are bit-for-bit identical
        /// to the sequential kernels across random shapes and thread
        /// counts.
        #[test]
        fn par_matmuls_match_sequential_bitwise(
            m in 1usize..20,
            k in 1usize..20,
            n in 1usize..20,
            threads in 1usize..9,
            seed in 0u64..500,
        ) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed ^ 0xABCD);
            let at = mat(k, m, seed ^ 0x77);
            let bt = mat(n, k, seed ^ 0x1234);
            let (pm, ptn, pnt) = with_thread_config(forced(threads), || {
                (par_matmul(&a, &b), par_matmul_tn(&at, &b), par_matmul_nt(&a, &bt))
            });
            prop_assert_eq!(bits(&a.matmul(&b)), bits(&pm));
            prop_assert_eq!(bits(&at.matmul_tn(&b)), bits(&ptn));
            prop_assert_eq!(bits(&a.matmul_nt(&bt)), bits(&pnt));
        }

        /// The column-tiled kernels behind `matmul`/`matmul_tn`/`matmul_nt`
        /// are bit-for-bit identical to the untiled scalar references:
        /// tiling widens the accumulator set but keeps each output
        /// element's k-ascending addition chain untouched.
        #[test]
        fn tiled_matmuls_match_scalar_reference_bitwise(
            m in 1usize..20,
            k in 1usize..20,
            n in 1usize..20,
            seed in 0u64..500,
        ) {
            let a = mat(m, k, seed);
            let b = mat(k, n, seed ^ 0xABCD);
            let at = mat(k, m, seed ^ 0x77);
            let bt = mat(n, k, seed ^ 0x1234);
            prop_assert_eq!(bits(&a.matmul_reference(&b)), bits(&a.matmul(&b)));
            prop_assert_eq!(bits(&at.matmul_tn_reference(&b)), bits(&at.matmul_tn(&b)));
            prop_assert_eq!(bits(&a.matmul_nt_reference(&bt)), bits(&a.matmul_nt(&bt)));
        }

        /// Non-finite values poison the product identically under
        /// parallelism (the sparse fast path may not swallow 0 × NaN).
        #[test]
        fn par_matmul_nan_propagation_matches_sequential(
            m in 2usize..12,
            k in 1usize..12,
            n in 1usize..12,
            threads in 2usize..6,
            poison in 0usize..144,
            seed in 0u64..200,
        ) {
            let a = mat(m, k, seed);
            let mut b = mat(k, n, seed ^ 0x55);
            b.set(poison % k, poison % n, f32::NAN);
            let par = with_thread_config(forced(threads), || par_matmul(&a, &b));
            prop_assert_eq!(bits(&a.matmul(&b)), bits(&par));
        }
    }
}
