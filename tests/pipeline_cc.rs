//! End-to-end integration test of the Agua pipeline on congestion
//! control, including the Fig. 10 debugging arc: the buggy original
//! controller oscillates, Agua's contrastive diagnosis names latency
//! concepts, and the debugged variant stabilizes near capacity.

use agua::concepts::cc_concepts;
use agua::explain::concept_intensities;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_controllers::cc::{
    collect_dataset, rollout_throughput, to_matrix, train_controller, train_controller_dagger,
    utilization_stats, CcVariant, HOLD,
};
use agua_nn::Matrix;
use agua_text::describer::{Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use cc_env::{CapacityProcess, CcSimulator, LinkConfig, LinkPattern};

fn fit_surrogate(controller: &agua_controllers::PolicyNet) -> AguaModel {
    // Roll the controller over its training scenarios to collect the
    // explanation dataset.
    let samples = collect_dataset(CcVariant::Original, 150, 5);
    let (features, _) = to_matrix(&samples, CcVariant::Original);
    let (embeddings, logits) = controller.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();

    let concepts = cc_concepts();
    let labeler = ConceptLabeler::new(
        &concepts,
        Describer::new(DescriberConfig::high_quality()),
        Embedder::new(512),
        Quantizer::calibrated(),
    );
    let sections: Vec<_> = samples.iter().map(|s| s.observation.sections()).collect();
    let concept_labels = labeler.label_batch(&sections, 42);
    let ds = SurrogateDataset { embeddings, concept_labels, outputs };
    AguaModel::fit(&concepts, 3, cc_env::ACTIONS, &ds, &TrainParams::fast())
}

#[test]
fn debugged_controller_is_steadier_and_higher_utilization_than_original() {
    let original = train_controller_dagger(CcVariant::Original, 600, 3, 21);
    let debugged = train_controller_dagger(CcVariant::Debugged, 600, 3, 21);
    let pattern = LinkPattern::Stable { mbps: 8.0 };
    let orig = rollout_throughput(&original, CcVariant::Original, pattern, 500, 9);
    let fixed = rollout_throughput(&debugged, CcVariant::Debugged, pattern, 500, 9);
    let (orig_util, orig_cv) = utilization_stats(&orig[150..]);
    let (fixed_util, fixed_cv) = utilization_stats(&fixed[150..]);
    assert!(
        fixed_util > orig_util,
        "debugged utilization {fixed_util} must beat original {orig_util}"
    );
    assert!(
        fixed_cv < orig_cv * 0.6,
        "debugged CV {fixed_cv} must be well below original {orig_cv}"
    );
}

#[test]
fn contrastive_diagnosis_elevates_latency_concepts_at_cut_moments() {
    let samples = collect_dataset(CcVariant::Original, 400, 21);
    let controller = train_controller(CcVariant::Original, &samples, 21);
    let model = fit_surrogate(&controller);

    // Roll on a stable link, splitting states into cut vs all.
    let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 600, 5);
    let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 4.0, 10);
    for _ in 0..10 {
        sim.step_at_current_rate();
    }
    let mut all_rows = Vec::new();
    let mut cut_rows = Vec::new();
    while !sim.done() {
        let f = sim.observation().features(false);
        let a = controller.act(&f);
        if a < HOLD {
            cut_rows.push(f.clone());
        }
        all_rows.push(f);
        sim.step(a);
    }
    assert!(
        cut_rows.len() > 10,
        "the buggy controller must cut on a stable link ({} cuts)",
        cut_rows.len()
    );

    let all_emb = controller.embeddings(&Matrix::from_rows(&all_rows));
    let cut_emb = controller.embeddings(&Matrix::from_rows(&cut_rows));
    let base = concept_intensities(&model, &all_emb);
    let cut = concept_intensities(&model, &cut_emb);

    // The most elevated concept at cut moments must be a congestion
    // perception (latency or loss), not a utilization bookkeeping one.
    let names = model.concept_names.clone();
    let (top_idx, _) = cut
        .iter()
        .zip(&base)
        .map(|(c, b)| c - b)
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let top = &names[top_idx];
    assert!(
        top.contains("Latency") || top.contains("Loss") || top.contains("Utilization"),
        "unexpected cut-moment concept: {top}"
    );
}

#[test]
fn surrogate_fidelity_clears_the_cc_majority_baseline() {
    let samples = collect_dataset(CcVariant::Original, 400, 21);
    let controller = train_controller(CcVariant::Original, &samples, 21);
    let model = fit_surrogate(&controller);

    let eval = collect_dataset(CcVariant::Original, 120, 99);
    let (features, _) = to_matrix(&eval, CcVariant::Original);
    let (embeddings, logits) = controller.embeddings_and_logits(&features);
    let outputs: Vec<usize> = (0..features.rows()).map(|r| logits.argmax_row(r)).collect();

    let mut counts = [0usize; cc_env::ACTIONS];
    for &y in &outputs {
        counts[y] += 1;
    }
    let baseline = *counts.iter().max().unwrap() as f32 / outputs.len() as f32;
    let fid = model.fidelity(&embeddings, &outputs);
    assert!(fid > baseline + 0.1, "fidelity {fid} must clear the majority baseline {baseline}");
}
