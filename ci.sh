#!/usr/bin/env bash
# Full CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> obs smoke: quickstart --obs jsonl writes a valid trace"
rm -f results/logs/quickstart.jsonl
cargo run --release --example quickstart -- --obs jsonl
test -s results/logs/quickstart.jsonl
if command -v jq >/dev/null 2>&1; then
  jq -es 'length > 0 and all(.[]; (.event | type) == "string")' \
    <results/logs/quickstart.jsonl >/dev/null
else
  # Without jq: every line must be a JSON object carrying the event tag.
  while IFS= read -r line; do
    case "$line" in
      '{'*'"event"'*'}') ;;
      *) echo "malformed JSONL line: $line" >&2; exit 1 ;;
    esac
  done <results/logs/quickstart.jsonl
fi
echo "    trace ok: $(wc -l <results/logs/quickstart.jsonl) events"

echo "==> CI gate passed"
