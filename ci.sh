#!/usr/bin/env bash
# Full CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> CI gate passed"
