#!/usr/bin/env bash
# Full CI gate for the workspace. Run from the repo root:
#
#   ./ci.sh           # the default gate (build, test, lints, audit, smokes)
#   ./ci.sh --deep    # + the verification layer: loom model checking of the
#                     #   worker pool, Miri, and ThreadSanitizer. The Miri and
#                     #   TSan stages need optional nightly components and are
#                     #   skipped (with the reason logged) when absent; the
#                     #   loom stage always runs.
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")"

DEEP=0
for arg in "$@"; do
  case "$arg" in
    --deep) DEEP=1 ;;
    *) echo "unknown argument: $arg (expected --deep)" >&2; exit 2 ;;
  esac
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo xtask audit"
cargo xtask audit

echo "==> cargo xtask spec"
rm -f results/spec_compliance.json
cargo xtask spec
test -s results/spec_compliance.json
if command -v jq >/dev/null 2>&1; then
  jq -e '
    .schema == "agua-spec-compliance-v1"
    and .clean == true
    and (.total_requirements | type == "number" and . > 0)
    and (.total_must | type == "number" and . > 0)
    and .total_must_anchored == .total_must
    and .must_coverage_pct == 100.0
    and (.specs | type == "array" and length >= 4)
    and all(.specs[];
      (.file | type == "string")
      and (.target | type == "string")
      and (.requirements | type == "number")
      and (.must | type == "number")
      and (.must_anchored | type == "number")
      and (.must_coverage_pct | type == "number")
      and (.entries | type == "array" and length > 0)
      and all(.entries[];
        (.id | type == "string")
        and (.level == "MUST" or .level == "SHOULD" or .level == "MAY")
        and (.anchors | type == "array")
        and all(.anchors[];
          (.path | type == "string") and (.line | type == "number")
          and (.kind == "citation" or .kind == "exception"))
        and (.exceptions | type == "array")))
  ' <results/spec_compliance.json >/dev/null
else
  # Without jq: the report must at least carry the schema tag, the clean
  # flag, and the per-spec coverage keys.
  for key in '"schema": "agua-spec-compliance-v1"' '"clean": true' \
             '"total_must"' '"total_must_anchored"' '"must_coverage_pct"' \
             '"specs"' '"entries"' '"anchors"'; do
    grep -q "$key" results/spec_compliance.json || {
      echo "missing key in spec_compliance.json: $key" >&2; exit 1
    }
  done
  echo "    jq unavailable: schema keys checked"
fi
echo "    spec report ok: $(wc -c <results/spec_compliance.json) bytes"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> obs smoke: quickstart --obs jsonl writes a valid trace"
rm -f results/logs/quickstart.jsonl
cargo run --release --example quickstart -- --obs jsonl
test -s results/logs/quickstart.jsonl
if command -v jq >/dev/null 2>&1; then
  jq -es 'length > 0 and all(.[]; (.event | type) == "string")' \
    <results/logs/quickstart.jsonl >/dev/null
else
  # Without jq: every line must be a JSON object carrying the event tag.
  while IFS= read -r line; do
    case "$line" in
      '{'*'"event"'*'}') ;;
      *) echo "malformed JSONL line: $line" >&2; exit 1 ;;
    esac
  done <results/logs/quickstart.jsonl
fi
echo "    trace ok: $(wc -l <results/logs/quickstart.jsonl) events"

echo "==> bench smoke: bench_parallel --smoke writes a schema-complete report"
rm -f results/BENCH_parallel.json
cargo run --release -p agua-bench --bin bench_parallel -- --smoke
test -s results/BENCH_parallel.json
if command -v jq >/dev/null 2>&1; then
  jq -e '
    .mode == "smoke"
    and (.stages | type == "array")
    and ([.stages[] | select(.stage == "batched_explanation")] | length > 0)
    and all(.stages[]; .byte_identical_to_1_thread == true)
    and (.batched_explanation_vs_reference
         | (.reference_1t_secs | type == "number")
         and (.fixed_1t_secs | type == "number")
         and (.fixed_4t_secs | type == "number")
         and (.speedup_fixed_1t_vs_reference | type == "number")
         and (.speedup_fixed_4t_vs_reference | type == "number")
         and .identical_to_reference == true)
    and (.matmul_sweep | type == "array" and length > 0)
    and all(.matmul_sweep[];
      (.rows | type == "number")
      and (.inner | type == "number")
      and (.cols | type == "number")
      and (.scoped_scalar_4t_secs | type == "number")
      and (.pool_tiled_4t_secs | type == "number")
      and (.seq_scalar_secs | type == "number")
      and (.seq_tiled_secs | type == "number")
      and (.speedup_pool_tiled_vs_scoped_scalar | type == "number"))
    and (.speedup_pool_tiled_vs_scoped_scalar | type == "number")
    and (.gate_calibration | type == "array" and length == 3)
    and ([.gate_calibration[].kernel] | index("matmul_q8") != null)
    and all(.gate_calibration[];
      (.kernel | type == "string")
      and (.calibrated_breakeven_flops | type == "number")
      and (.measured_crossover_flops | type == "number" or type == "null")
      and (.points | type == "array" and length > 0))
    and (.quantized
         | (.epsilon | type == "number")
         and (.fidelity_drop | type == "number")
         and (.weight_bytes_q8 | type == "number")
         and (.predict_f32_1t_secs | type == "number")
         and (.predict_q8_1t_secs | type == "number")
         and (.predict_f32_4t_secs | type == "number")
         and (.predict_q8_4t_secs | type == "number")
         and (.explain_f32_4t_secs | type == "number")
         and (.explain_q8_4t_secs | type == "number")
         and .explain_q8_identical_to_reference == true)
    and (.kernel_dispatch_counters | type == "object")
    and (.kernel_scheduling | type == "object")
  ' <results/BENCH_parallel.json >/dev/null

else
  # Without jq: the report must at least carry the top-level keys.
  for key in mode stages batched_explanation_vs_reference matmul_sweep \
             speedup_pool_tiled_vs_scoped_scalar gate_calibration quantized \
             kernel_dispatch_counters kernel_scheduling; do
    grep -q "\"$key\"" results/BENCH_parallel.json || {
      echo "missing key in BENCH_parallel.json: $key" >&2; exit 1
    }
  done
  echo "    jq unavailable: schema keys checked"
fi
echo "    bench report ok: $(wc -c <results/BENCH_parallel.json) bytes"

echo "==> serve smoke: daemon + loadgen --smoke, contracts + schema"
rm -f results/BENCH_serve.json
serve_addr_file="$(mktemp)"
rm -f "$serve_addr_file"
cargo run --release -p agua-serve --bin agua-serve -- \
  --fit ddos --samples 150 --addr 127.0.0.1:0 --addr-file "$serve_addr_file" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 600); do
  [ -s "$serve_addr_file" ] && break
  kill -0 "$serve_pid" 2>/dev/null || break
  sleep 0.1
done
test -s "$serve_addr_file" || {
  echo "agua-serve never published its address" >&2; exit 1
}
# loadgen exits nonzero on any byte-identity or reload-contract
# violation; the report carries the latency/RPS numbers.
cargo run --release -p agua-serve --bin loadgen -- \
  --addr-file "$serve_addr_file" --smoke
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f "$serve_addr_file"
test -s results/BENCH_serve.json
if command -v jq >/dev/null 2>&1; then
  jq -e '
    .smoke == true
    and (.clients | type == "array" and length > 0)
    and (.requests_per_client | type == "number")
    and (.identity | .compared > 0 and .mismatched == 0)
    and .reload.byte_identical == true
    and .reload.generation_bumped == true
    and ([.modes.sequential, .modes.coalesced][]
         | type == "object" and length > 0)
    and ([.modes[] | to_entries[].value] | all(
      (.rps | type == "number")
      and (.p50_ms | type == "number")
      and (.p99_ms | type == "number")
      and (.p999_ms | type == "number")
      and (.mean_batch | type == "number")
      and .s5xx == 0))
    and (.speedup_coalesced_at_max_clients | type == "number")
  ' <results/BENCH_serve.json >/dev/null
else
  for key in clients identity modes reload requests_per_client smoke \
             speedup_coalesced_at_max_clients; do
    grep -q "\"$key\"" results/BENCH_serve.json || {
      echo "missing key in BENCH_serve.json: $key" >&2; exit 1
    }
  done
  echo "    jq unavailable: schema keys checked"
fi
echo "    serve report ok: $(wc -c <results/BENCH_serve.json) bytes"

# The perf-regression watchdog: the fresh report (smoke mode here, so
# only the machine-independent absolute floors apply) against the
# committed repo-root record. A full-mode rerun on the recording
# machine additionally gets the relative speedup deltas. The serve
# comparison rides along automatically now that a fresh
# results/BENCH_serve.json exists.
echo "==> cargo xtask perfdiff"
cargo xtask perfdiff

echo "==> obs overhead gate: quickstart --obs trace stays under 5%"
rm -f results/logs/quickstart_trace.json results/logs/quickstart_metrics.json
obs_log="$(cargo run --release --example quickstart -- --obs trace)"
printf '%s\n' "$obs_log" | grep '\[obs\]'
ratio="$(printf '%s\n' "$obs_log" | sed -n 's/^\[obs\] overhead_ratio=//p')"
if [ -z "$ratio" ]; then
  echo "quickstart printed no [obs] overhead_ratio line" >&2; exit 1
fi
awk -v r="$ratio" 'BEGIN { exit !(r >= 0 && r <= 0.05) }' || {
  echo "obs overhead gate: aggregation cost ratio $ratio exceeds 0.05" >&2
  exit 1
}
test -s results/logs/quickstart_trace.json
if command -v jq >/dev/null 2>&1; then
  jq -e '
    (.traceEvents | type == "array" and length > 0)
    and all(.traceEvents[];
      (.ph | type == "string") and (.ts | type == "number")
      and (.pid | type == "number") and (.tid | type == "number"))
  ' <results/logs/quickstart_trace.json >/dev/null
else
  grep -q '"traceEvents"' results/logs/quickstart_trace.json
fi
echo "    obs overhead ok: ratio=$ratio, trace valid"

echo "==> cache gate: warm store reruns are pure hits and byte-identical"
rm -rf results/cache
rm -f results/fig6_ddos_explanations.json
AGUA_CACHE=on cargo run --release -p agua-bench --bin fig6_ddos_explanations -- --smoke \
  >/dev/null
cp results/fig6_ddos_explanations.json /tmp/agua_fig6_cold.json
warm_log="$(AGUA_CACHE=on cargo run --release -p agua-bench \
  --bin fig6_ddos_explanations -- --smoke)"
summary="$(printf '%s\n' "$warm_log" | grep '\[store\]' || true)"
if [ -z "$summary" ]; then
  echo "warm run printed no [store] summary" >&2; exit 1
fi
echo "    warm run: $summary"
case "$summary" in
  *"hits=0"*) echo "warm run should hit the store" >&2; exit 1 ;;
esac
case "$summary" in
  *"misses=0"*"fits=0"*) ;;
  *) echo "warm run recomputed artifacts: $summary" >&2; exit 1 ;;
esac
cmp /tmp/agua_fig6_cold.json results/fig6_ddos_explanations.json || {
  echo "warm rerun changed the result JSON" >&2; exit 1
}
AGUA_CACHE=off cargo run --release -p agua-bench --bin fig6_ddos_explanations -- --smoke \
  >/dev/null
cmp /tmp/agua_fig6_cold.json results/fig6_ddos_explanations.json || {
  echo "AGUA_CACHE=off disagrees with the cached pipeline" >&2; exit 1
}
echo "    cache gate ok: warm hits only, cached == uncached"

if [ "$DEEP" -eq 1 ]; then
  echo "==> [deep] loom: model-check the worker pool"
  # Single-threaded: each loom test explores thousands of schedules and
  # owns the process-global scheduler state while it runs.
  RUSTFLAGS="--cfg loom" \
    cargo test -p agua-nn --test loom_pool --release -- --test-threads=1

  echo "==> [deep] miri: interpret the agua-nn tests"
  if cargo +nightly miri --version >/dev/null 2>&1; then
    # Single-threaded so the small-shape pool tests (which end in
    # pool::shutdown) leave no live worker threads at process exit —
    # Miri fails a run whose main thread outlives its siblings.
    MIRIFLAGS="-Zmiri-strict-provenance" \
      cargo +nightly miri test -p agua-nn -- --test-threads=1
  else
    echo "    SKIPPED: 'cargo +nightly miri' unavailable" \
         "(install with: rustup +nightly component add miri)"
  fi

  echo "==> [deep] tsan: ThreadSanitizer over the agua-nn tests"
  if rustup +nightly component list --installed 2>/dev/null | grep -q rust-src; then
    RUSTFLAGS="-Zsanitizer=thread" \
      cargo +nightly test -p agua-nn \
        -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -- --test-threads=1
  else
    echo "    SKIPPED: nightly rust-src unavailable, -Zbuild-std impossible" \
         "(install with: rustup +nightly component add rust-src)"
  fi
fi

echo "==> CI gate passed"
